//! Trace and metrics acceptance tests:
//!
//! - a golden-file JSONL trace of the paper's motivating example (§2,
//!   Figure 4 on the Figure 5 toy machine), restricted to the stable
//!   decision-level events, proving both determinism of the scheduler on
//!   the motivating example and stability of the JSONL encoding;
//! - the metrics/validator consistency check: the occupancy profiles in
//!   [`ScheduleMetrics`] must equal an independent replay of the
//!   schedule's resource bookings done the way the validator does it.
//!
//! Regenerate the golden file after an intentional scheduler change with
//! `UPDATE_GOLDEN=1 cargo test -p csched-core --test trace_golden`.

use std::collections::HashSet;

use csched_core::metrics::ScheduleMetrics;
use csched_core::trace::{decision_filter, JsonlSink};
use csched_core::{
    schedule_kernel, schedule_kernel_traced, validate, ResourceTable, SchedulerConfig, TableMode,
};
use csched_ir::{Kernel, KernelBuilder};
use csched_machine::{toy, Resource, ResourceMap};

/// Figure 4: `a = load; b = 1+2; c = 3+4; _ = a+b; _ = a+c` plus stores.
fn figure4() -> Kernel {
    let mut kb = KernelBuilder::new("fig4");
    let mem = kb.region("mem", true);
    let b = kb.straight_block("b");
    let a = kb.load(b, mem, 0i64.into(), 0i64.into());
    let bv = kb.push(b, csched_machine::Opcode::IAdd, [1i64.into(), 2i64.into()]);
    let cv = kb.push(b, csched_machine::Opcode::IAdd, [3i64.into(), 4i64.into()]);
    let s4 = kb.push(b, csched_machine::Opcode::IAdd, [a.into(), bv.into()]);
    let s5 = kb.push(b, csched_machine::Opcode::IAdd, [a.into(), cv.into()]);
    kb.store(b, mem, 10i64.into(), 0i64.into(), s4.into());
    kb.store(b, mem, 11i64.into(), 0i64.into(), s5.into());
    kb.build().unwrap()
}

#[test]
fn motivating_example_trace_matches_golden_file() {
    let arch = toy::motivating_example();
    let kernel = figure4();
    let mut sink = JsonlSink::with_filter(decision_filter);
    let schedule =
        schedule_kernel_traced(&arch, &kernel, SchedulerConfig::default(), &mut sink).unwrap();
    validate::validate(&arch, &kernel, &schedule).unwrap();
    let got = sink.into_string();

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/motivating_trace.jsonl"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(path).expect(
        "golden file missing; regenerate with UPDATE_GOLDEN=1 \
         cargo test -p csched-core --test trace_golden",
    );
    assert_eq!(
        got, want,
        "trace diverged from golden; if the scheduler change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn traced_and_untraced_schedules_are_identical() {
    let arch = toy::motivating_example();
    let kernel = figure4();
    let plain = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
    let mut sink = JsonlSink::new();
    let traced =
        schedule_kernel_traced(&arch, &kernel, SchedulerConfig::default(), &mut sink).unwrap();
    assert!(sink.lines() > 0);
    for op in plain.universe().op_ids() {
        assert_eq!(plain.placement(op), traced.placement(op));
    }
}

#[test]
fn every_trace_line_is_a_json_object() {
    let arch = toy::motivating_example();
    let kernel = figure4();
    let mut sink = JsonlSink::new();
    schedule_kernel_traced(&arch, &kernel, SchedulerConfig::default(), &mut sink).unwrap();
    for line in sink.as_str().lines() {
        assert!(
            line.starts_with("{\"event\":\"") && line.ends_with('}'),
            "{line}"
        );
        // Quotes are balanced (the escaping test proper lives in the
        // trace module's unit tests).
        assert_eq!(line.matches('"').count() % 2, 0, "{line}");
    }
}

/// The ISSUE's consistency contract: `ScheduleMetrics` occupancy sums
/// must equal the validator's resource bookings. This re-implements the
/// validator's replay (issue claims for every op, write stubs deduped by
/// `(producer, stub)`, read stubs deduped by `(consumer, slot)`) with the
/// public API and compares every per-resource profile.
#[test]
fn metrics_occupancy_equals_validator_bookings() {
    for (arch, kernel) in [
        (toy::motivating_example(), figure4()),
        (toy::motivating_example(), looped_kernel()),
    ] {
        let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        validate::validate(&arch, &kernel, &schedule).unwrap();
        let m = ScheduleMetrics::compute(&arch, &kernel, &schedule);

        // Independent validator-style replay.
        let u = schedule.universe();
        let ii = schedule.ii().unwrap_or(1).max(1);
        let map = ResourceMap::new(&arch);
        let mut tables: Vec<ResourceTable> = kernel
            .blocks()
            .iter()
            .map(|b| {
                let mode = if b.is_loop() {
                    TableMode::Modulo(ii)
                } else {
                    TableMode::Linear
                };
                ResourceTable::new(map.clone(), mode)
            })
            .collect();
        for op in u.op_ids() {
            let p = schedule.placement(op);
            let interval = arch
                .fu(p.fu)
                .capability(u.op(op).opcode)
                .map(|c| c.issue_interval)
                .unwrap_or(1);
            let block = u.op(op).block;
            assert!(tables[block.index()].place_issue(p.cycle, p.fu, interval, op));
        }
        let mut placed_writes = HashSet::new();
        let mut placed_reads = HashSet::new();
        for cid in u.comm_ids() {
            for (leg_id, route) in schedule.transport(cid) {
                let leg = u.comm(leg_id);
                let p = schedule.placement(leg.producer);
                let q = schedule.placement(leg.consumer);
                let pb = u.op(leg.producer).block;
                let qb = u.op(leg.consumer).block;
                if placed_writes.insert((leg.producer, route.wstub)) {
                    let fanout = arch.fu(p.fu).output_fanout();
                    assert!(tables[pb.index()].place_write_stub(
                        p.completion(),
                        route.wstub,
                        leg.producer,
                        fanout
                    ));
                }
                if placed_reads.insert((leg.consumer, leg.slot)) {
                    assert!(tables[qb.index()].place_read_stub(
                        q.cycle,
                        route.rstub,
                        leg.consumer,
                        leg.slot
                    ));
                }
            }
        }

        // Every profile in the metrics equals the independent replay.
        for (bi, block) in kernel.block_ids().enumerate() {
            let bm = &m.blocks[bi];
            let table = &tables[block.index()];
            for (fi, load) in bm.fu_issue.iter().enumerate() {
                let fu = csched_machine::FuId::from_raw(fi);
                assert_eq!(
                    load.profile,
                    table.occupancy_profile(Resource::FuIssue(fu), bm.rows),
                    "issue profile of {} in block {}",
                    load.name,
                    bm.name
                );
            }
            for (vi, load) in bm.buses.iter().enumerate() {
                let bus = csched_machine::BusId::from_raw(vi);
                assert_eq!(
                    load.profile,
                    table.occupancy_profile(Resource::Bus(bus), bm.rows),
                    "bus profile of {} in block {}",
                    load.name,
                    bm.name
                );
            }
            for (pi, load) in bm.write_ports.iter().enumerate() {
                let port = csched_machine::WritePortId::from_raw(pi);
                assert_eq!(
                    load.profile,
                    table.occupancy_profile(Resource::WritePort(port), bm.rows),
                    "write-port profile of {} in block {}",
                    load.name,
                    bm.name
                );
            }
            for (pi, load) in bm.read_ports.iter().enumerate() {
                let port = csched_machine::ReadPortId::from_raw(pi);
                assert_eq!(
                    load.profile,
                    table.occupancy_profile(Resource::ReadPort(port), bm.rows),
                    "read-port profile of {} in block {}",
                    load.name,
                    bm.name
                );
            }
        }
    }
}

/// A small software-pipelined loop exercising the modulo (II-folded)
/// occupancy path of the consistency check.
fn looped_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("looped");
    let mem = kb.region("mem", true);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let x = kb.load(lp, mem, i.into(), 0i64.into());
    let y = kb.push(lp, csched_machine::Opcode::IAdd, [x.into(), 5i64.into()]);
    kb.store(lp, mem, i.into(), 64i64.into(), y.into());
    let i1 = kb.push(lp, csched_machine::Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().unwrap()
}
