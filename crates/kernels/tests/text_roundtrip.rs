//! Every Table 1 kernel round-trips through the textual kernel format and
//! still matches its scalar reference — proving the text front-end covers
//! the full surface the evaluation uses (all opcodes, loop variables,
//! regions, and folded addressing).

use csched_ir::text;

#[test]
fn all_kernels_round_trip_through_text() {
    for w in csched_kernels::all() {
        let printed = text::print(&w.kernel);
        let reparsed =
            text::parse(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", w.kernel.name()));
        assert_eq!(
            reparsed.num_ops(),
            w.kernel.num_ops(),
            "{}",
            w.kernel.name()
        );
        assert_eq!(reparsed.name(), w.kernel.name());

        // Execute the reparsed kernel against the original's reference.
        let mut mem = w.memory();
        csched_ir::interp::run(&reparsed, &mut mem, w.trip)
            .unwrap_or_else(|e| panic!("{}: {e}", w.kernel.name()));
        w.verify(&mem)
            .unwrap_or_else(|e| panic!("reparsed kernel diverged: {e}"));

        // Printing the reparse is a fixpoint.
        assert_eq!(text::print(&reparsed), printed, "{}", w.kernel.name());
    }
}

#[test]
fn table1_kernels_carry_no_removable_fat() {
    // The kernels' op counts are part of the experiment: the optimizer
    // must find nothing to fold, merge or kill.
    for w in csched_kernels::all() {
        let (opt, stats) = csched_ir::opt::optimize(&w.kernel).unwrap();
        assert_eq!(
            stats.eliminated(),
            0,
            "{}: optimizer removed {} ops",
            w.kernel.name(),
            stats.eliminated()
        );
        assert_eq!(opt.num_ops(), w.kernel.num_ops());
    }
}

#[test]
fn optimize_after_unroll_preserves_reference() {
    // Compose the transformation pipeline a real front-end would run:
    // unroll x2 then clean up, and check against the scalar reference.
    for name in ["FFT", "Block Warp"] {
        let w = csched_kernels::by_name(name).unwrap();
        let unrolled = csched_ir::unroll(&w.kernel, 2).unwrap();
        let (clean, _) = csched_ir::opt::optimize(&unrolled).unwrap();
        let mut mem = (w.inputs)(w.trip);
        csched_ir::interp::run(&clean, &mut mem, w.trip / 2).unwrap();
        // The unrolled kernel does the same work in half the iterations.
        for (addr, want) in (w.expected)(w.trip) {
            let got = mem.main.get(&addr).copied();
            assert!(
                got.is_some_and(|g| g.bit_eq(want)),
                "{name}: address {addr}: expected {want}, got {got:?}"
            );
        }
    }
}
