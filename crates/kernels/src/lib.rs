//! # csched-kernels — the Table 1 evaluation kernels
//!
//! The ten graphics, image-processing, signal-processing and sorting
//! kernels the paper evaluates communication scheduling on (Table 1):
//! `DCT`, `FFT`, `FFT-U4`, `FIR-FP`, `FIR-INT`, `Block Warp`,
//! `Block Warp-U2`, `Triangle Transform`, `Sort` and `Merge`. Each kernel
//! follows the paper's structure — "a short preamble followed by a single
//! software-pipelined loop" — and ships as a [`Workload`] bundling the IR,
//! the evaluation trip count, a deterministic input generator, and an
//! independent scalar reference implementation.
//!
//! ```
//! let workloads = csched_kernels::all();
//! assert_eq!(workloads.len(), 10);
//! for w in &workloads {
//!     w.self_check().expect("kernel IR matches its scalar reference");
//! }
//! ```

#![warn(missing_docs)]

pub mod dct;
pub mod fft;
pub mod fir;
pub mod sortmerge;
pub mod warp;
mod workload;

pub use workload::{prand, small_float, small_int, Workload, AUX_BASE, IN_BASE, OUT_BASE};

/// All ten Table 1 workloads, in the table's order.
pub fn all() -> Vec<Workload> {
    vec![
        dct::dct(),
        fft::fft(),
        fft::fft_u4(),
        fir::fir_fp(),
        fir::fir_int(),
        warp::block_warp(),
        warp::block_warp_u2(),
        warp::triangle_transform(),
        sortmerge::sort(),
        sortmerge::merge(),
    ]
}

/// Looks up a workload by its Table 1 name (case-insensitive).
pub fn by_name(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .find(|w| w.kernel.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_kernels_with_table1_names() {
        let names: Vec<String> = all().iter().map(|w| w.kernel.name().to_string()).collect();
        assert_eq!(
            names,
            [
                "DCT",
                "FFT",
                "FFT-U4",
                "FIR-FP",
                "FIR-INT",
                "Block Warp",
                "Block Warp-U2",
                "Triangle Transform",
                "Sort",
                "Merge"
            ]
        );
    }

    #[test]
    fn every_kernel_self_checks() {
        for w in all() {
            w.self_check().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn every_kernel_has_loop_and_description() {
        for w in all() {
            assert!(w.kernel.loop_block().is_some(), "{}", w.kernel.name());
            assert!(!w.kernel.description().is_empty(), "{}", w.kernel.name());
            assert!(w.trip >= 2, "{}", w.kernel.name());
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("fir-fp").is_some());
        assert!(by_name("DCT").is_some());
        assert!(by_name("nope").is_none());
    }
}
