//! Workloads: a kernel plus its evaluation inputs and expected outputs.
//!
//! Each Table 1 kernel ships as a [`Workload`]: the IR kernel, the trip
//! count used in the evaluation, an input-memory generator, and an
//! *independent scalar reference implementation* producing the expected
//! output words. The reference is written directly in Rust (not via the IR
//! interpreter), so kernel-authoring bugs cannot hide: IR interpreter,
//! cycle simulator and scalar reference must all agree.

use csched_ir::{interp, Kernel, Memory, Word};

/// Base address of the primary input region in every workload.
pub const IN_BASE: i64 = 0;
/// Base address of the auxiliary input region (coefficients, twiddles,
/// second stream).
pub const AUX_BASE: i64 = 100_000;
/// Base address of the output region.
pub const OUT_BASE: i64 = 200_000;

/// A kernel with its evaluation harness.
pub struct Workload {
    /// The kernel IR.
    pub kernel: Kernel,
    /// Loop trip count used in the evaluation.
    pub trip: u64,
    /// Builds the input memory for a given trip count.
    pub inputs: fn(u64) -> Memory,
    /// Scalar reference: expected `(address, value)` pairs after running
    /// `trip` iterations on the memory `inputs(trip)` produces.
    pub expected: fn(u64) -> Vec<(i64, Word)>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("kernel", &self.kernel.name())
            .field("trip", &self.trip)
            .finish()
    }
}

impl Workload {
    /// Input memory at the workload's own trip count.
    pub fn memory(&self) -> Memory {
        (self.inputs)(self.trip)
    }

    /// Expected outputs at the workload's own trip count.
    pub fn expected_outputs(&self) -> Vec<(i64, Word)> {
        (self.expected)(self.trip)
    }

    /// Checks `memory` (after execution) against the scalar reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching address.
    pub fn verify(&self, memory: &Memory) -> Result<(), String> {
        for (addr, want) in self.expected_outputs() {
            let got = memory.main.get(&addr).copied();
            let ok = matches!(got, Some(g) if g.bit_eq(want) || close(g, want));
            if !ok {
                return Err(format!(
                    "{}: address {addr}: expected {want}, got {got:?}",
                    self.kernel.name()
                ));
            }
        }
        Ok(())
    }

    /// Runs the IR interpreter on the workload and verifies it against the
    /// scalar reference (a self-check that the kernel computes what Table 1
    /// says it computes).
    ///
    /// # Errors
    ///
    /// Returns interpreter failures or reference mismatches as text.
    pub fn self_check(&self) -> Result<(), String> {
        let mut mem = self.memory();
        interp::run(&self.kernel, &mut mem, self.trip).map_err(|e| e.to_string())?;
        self.verify(&mem)
    }
}

/// Floating-point closeness for reference comparison: the scheduled kernel
/// evaluates the same expression tree as the reference, so results are
/// bit-identical in practice; the epsilon only guards against benign
/// reassociation if a kernel is ever rewritten.
fn close(a: Word, b: Word) -> bool {
    match (a, b) {
        (Word::F(x), Word::F(y)) => (x - y).abs() <= 1e-9 * (1.0 + y.abs()),
        _ => false,
    }
}

/// Deterministic pseudo-random stream used by every input generator
/// (xorshift64*, fixed seed per tag) — keeps workloads reproducible
/// without pulling `rand` into the library crate.
pub fn prand(tag: u64) -> impl FnMut() -> u64 {
    let mut state = 0x9E3779B97F4A7C15u64 ^ (tag.wrapping_mul(0xD1B54A32D192ED03) | 1);
    move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A small signed integer in `[-bound, bound]` from the stream.
pub fn small_int(r: &mut impl FnMut() -> u64, bound: i64) -> i64 {
    (r() % (2 * bound as u64 + 1)) as i64 - bound
}

/// A float in roughly `[-1, 1]` from the stream.
pub fn small_float(r: &mut impl FnMut() -> u64) -> f64 {
    (r() % 2_000_001) as f64 / 1_000_000.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prand_is_deterministic_and_tag_sensitive() {
        let mut a = prand(1);
        let mut b = prand(1);
        let mut c = prand(2);
        let xs: Vec<u64> = (0..8).map(|_| a()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn helpers_stay_in_range() {
        let mut r = prand(7);
        for _ in 0..100 {
            let v = small_int(&mut r, 50);
            assert!((-50..=50).contains(&v));
            let f = small_float(&mut r);
            assert!((-1.0..=1.0).contains(&f));
        }
    }
}
