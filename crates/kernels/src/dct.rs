//! `DCT` (Table 1): "Discrete Cosine Transform: Transforms an 8x8 matrix
//! of 16-bit fixed-point numbers."
//!
//! Each loop iteration performs one 8-point one-dimensional DCT-II row
//! transform in Q13 fixed point, using an even/odd butterfly
//! decomposition: eight loads, a butterfly stage, four even-part and four
//! odd-part output computations (integer multiplies by constant cosine
//! immediates, arithmetic shifts), and eight stores. Sixteen iterations
//! transform the rows and columns' worth of data of one 8×8 matrix pass.

use csched_ir::{Kernel, KernelBuilder, Memory, ValueId, Word};
use csched_machine::Opcode;

use crate::workload::{prand, small_int, Workload, IN_BASE, OUT_BASE};

/// Q13 cosine constants: `C[k] = round(cos(k·π/16) · 2^13)`.
pub const COS_Q13: [i64; 8] = [8192, 8035, 7568, 6811, 5793, 4551, 3135, 1598];

/// Fixed-point scale shift.
pub const SHIFT: i64 = 13;

/// The scalar reference for one 8-point row, bit-exact with the kernel.
pub fn dct8_reference(x: &[i64; 8]) -> [i64; 8] {
    let c = COS_Q13;
    let s07 = x[0] + x[7];
    let d07 = x[0] - x[7];
    let s16 = x[1] + x[6];
    let d16 = x[1] - x[6];
    let s25 = x[2] + x[5];
    let d25 = x[2] - x[5];
    let s34 = x[3] + x[4];
    let d34 = x[3] - x[4];
    let e0 = s07 + s34;
    let e3 = s07 - s34;
    let e1 = s16 + s25;
    let e2 = s16 - s25;
    let mut y = [0i64; 8];
    y[0] = ((e0 + e1) * c[4]) >> SHIFT;
    y[4] = ((e0 - e1) * c[4]) >> SHIFT;
    y[2] = (e3 * c[2] + e2 * c[6]) >> SHIFT;
    y[6] = (e3 * c[6] - e2 * c[2]) >> SHIFT;
    y[1] = (d07 * c[1] + d16 * c[3] + d25 * c[5] + d34 * c[7]) >> SHIFT;
    y[3] = (d07 * c[3] - d16 * c[7] - d25 * c[1] - d34 * c[5]) >> SHIFT;
    y[5] = (d07 * c[5] - d16 * c[1] + d25 * c[7] + d34 * c[3]) >> SHIFT;
    y[7] = (d07 * c[7] - d16 * c[5] + d25 * c[3] - d34 * c[1]) >> SHIFT;
    y
}

fn build() -> Kernel {
    let mut kb = KernelBuilder::new("DCT");
    kb.description(
        "Discrete Cosine Transform: Transforms an 8x8 matrix of 16-bit fixed-point numbers.",
    );
    let input = kb.region("rows", true);
    let output = kb.region("coeffs", true);
    let lp = kb.loop_block("row");
    let i = kb.loop_var(lp, 0i64.into());
    kb.name_value(i, "row");

    // base = 8 * i
    let base = kb.push(lp, Opcode::Shl, [i.into(), 3i64.into()]);
    let x: Vec<ValueId> = (0..8)
        .map(|k| kb.load(lp, input, base.into(), (IN_BASE + k).into()))
        .collect();

    let add = |kb: &mut KernelBuilder, a: ValueId, b: ValueId| {
        kb.push(lp, Opcode::IAdd, [a.into(), b.into()])
    };
    let sub = |kb: &mut KernelBuilder, a: ValueId, b: ValueId| {
        kb.push(lp, Opcode::ISub, [a.into(), b.into()])
    };
    let mulc = |kb: &mut KernelBuilder, a: ValueId, k: usize| {
        kb.push(lp, Opcode::IMul, [a.into(), COS_Q13[k].into()])
    };
    let scale =
        |kb: &mut KernelBuilder, a: ValueId| kb.push(lp, Opcode::Sra, [a.into(), SHIFT.into()]);

    let s07 = add(&mut kb, x[0], x[7]);
    let d07 = sub(&mut kb, x[0], x[7]);
    let s16 = add(&mut kb, x[1], x[6]);
    let d16 = sub(&mut kb, x[1], x[6]);
    let s25 = add(&mut kb, x[2], x[5]);
    let d25 = sub(&mut kb, x[2], x[5]);
    let s34 = add(&mut kb, x[3], x[4]);
    let d34 = sub(&mut kb, x[3], x[4]);
    let e0 = add(&mut kb, s07, s34);
    let e3 = sub(&mut kb, s07, s34);
    let e1 = add(&mut kb, s16, s25);
    let e2 = sub(&mut kb, s16, s25);

    let mut y: [Option<ValueId>; 8] = [None; 8];
    let t = add(&mut kb, e0, e1);
    let t = mulc(&mut kb, t, 4);
    y[0] = Some(scale(&mut kb, t));
    let t = sub(&mut kb, e0, e1);
    let t = mulc(&mut kb, t, 4);
    y[4] = Some(scale(&mut kb, t));
    let a = mulc(&mut kb, e3, 2);
    let b = mulc(&mut kb, e2, 6);
    let t = add(&mut kb, a, b);
    y[2] = Some(scale(&mut kb, t));
    let a = mulc(&mut kb, e3, 6);
    let b = mulc(&mut kb, e2, 2);
    let t = sub(&mut kb, a, b);
    y[6] = Some(scale(&mut kb, t));

    // Odd outputs: signed sums of d07..d34 times rotated constants
    // (out index, c index for d07, then (c index, sign) per remaining d).
    type OddSpec = (usize, usize, [(usize, i64); 3]);
    let odd: [OddSpec; 4] = [
        (1, 1, [(3, 1), (5, 1), (7, 1)]),
        (3, 3, [(7, -1), (1, -1), (5, -1)]),
        (5, 5, [(1, -1), (7, 1), (3, 1)]),
        (7, 7, [(5, -1), (3, 1), (1, -1)]),
    ];
    let ds = [d07, d16, d25, d34];
    for &(out_idx, c0, rest) in &odd {
        let mut acc = mulc(&mut kb, ds[0], c0);
        for (d, &(ck, sign)) in ds[1..].iter().zip(rest.iter()) {
            let prod = mulc(&mut kb, *d, ck);
            acc = if sign > 0 {
                add(&mut kb, acc, prod)
            } else {
                sub(&mut kb, acc, prod)
            };
        }
        y[out_idx] = Some(scale(&mut kb, acc));
    }

    for (k, yk) in y.iter().enumerate() {
        kb.store(
            lp,
            output,
            base.into(),
            (OUT_BASE + k as i64).into(),
            yk.expect("all outputs set").into(),
        );
    }
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().expect("DCT kernel is well-formed")
}

fn inputs(trip: u64) -> Memory {
    let mut r = prand(0xDC7);
    let mut mem = Memory::new();
    mem.write_block(
        IN_BASE,
        (0..8 * trip as usize).map(|_| Word::I(small_int(&mut r, 255))),
    );
    mem
}

fn expected(trip: u64) -> Vec<(i64, Word)> {
    let mem = inputs(trip);
    let mut out = Vec::new();
    for row in 0..trip as i64 {
        let words = mem.read_block(IN_BASE + 8 * row, 8);
        let mut x = [0i64; 8];
        for (slot, w) in x.iter_mut().zip(&words) {
            *slot = w.as_int().expect("int inputs");
        }
        let y = dct8_reference(&x);
        for (k, &v) in y.iter().enumerate() {
            out.push((OUT_BASE + 8 * row + k as i64, Word::I(v)));
        }
    }
    out
}

/// The `DCT` workload (16 rows = two 8×8 matrices' row passes).
pub fn dct() -> Workload {
    Workload {
        kernel: build(),
        trip: 16,
        inputs,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_matches_reference() {
        dct().self_check().unwrap();
    }

    #[test]
    fn dc_row_concentrates_energy() {
        // A constant row transforms to a DC coefficient and zeros.
        let y = dct8_reference(&[100; 8]);
        assert!(y[0] > 0);
        for &v in &y[1..] {
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn uses_multiplies_and_shifts() {
        let h = dct().kernel.opcode_histogram();
        assert_eq!(h[&Opcode::IMul], 6 + 16); // even part + odd part
        assert_eq!(h[&Opcode::Sra], 8);
        assert_eq!(h[&Opcode::Load], 8);
        assert_eq!(h[&Opcode::Store], 8);
    }
}
