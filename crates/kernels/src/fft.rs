//! `FFT` and `FFT-U4` (Table 1): "Performs a 1024-point floating-point
//! FFT" and the same kernel "with the inner loop unrolled four times".
//!
//! The kernel is the inner loop of one radix-2 decimation-in-time pass
//! over a 1024-point complex array (interleaved re/im): each iteration
//! loads one butterfly pair and its twiddle factor, performs the complex
//! multiply-add, and stores the pair to the pass's output buffer
//! (stream processors ping-pong FFT passes between buffers). Butterfly
//! `i` touches elements `i` and `i + 512`, so iterations access disjoint
//! addresses and the pass software-pipelines freely.

use csched_ir::{unroll, Kernel, KernelBuilder, Memory, Word};
use csched_machine::Opcode;

use crate::workload::{prand, small_float, Workload, AUX_BASE, IN_BASE, OUT_BASE};

/// Butterfly span of the simulated pass (1024-point FFT, first stage).
pub const HALF: i64 = 512;

fn build() -> Kernel {
    let mut kb = KernelBuilder::new("FFT");
    kb.description("Fast Fourier Transform: Performs a 1024-point floating-point FFT.");
    let data = kb.region("in", true);
    let out = kb.region("out", true);
    let twiddle = kb.region("twiddle", false); // read-only
    let lp = kb.loop_block("butterfly");
    let i = kb.loop_var(lp, 0i64.into());
    kb.name_value(i, "i");

    // Addresses fold into the accesses: base 2i, immediate offsets.
    let two_i = kb.push(lp, Opcode::Shl, [i.into(), 1i64.into()]);
    let ar = kb.load(lp, data, two_i.into(), IN_BASE.into());
    let ai = kb.load(lp, data, two_i.into(), (IN_BASE + 1).into());
    let br = kb.load(lp, data, two_i.into(), (IN_BASE + 2 * HALF).into());
    let bi = kb.load(lp, data, two_i.into(), (IN_BASE + 2 * HALF + 1).into());
    let wr = kb.load(lp, twiddle, two_i.into(), AUX_BASE.into());
    let wi = kb.load(lp, twiddle, two_i.into(), (AUX_BASE + 1).into());

    // t = w * b (complex)
    let brwr = kb.push(lp, Opcode::FMul, [br.into(), wr.into()]);
    let biwi = kb.push(lp, Opcode::FMul, [bi.into(), wi.into()]);
    let brwi = kb.push(lp, Opcode::FMul, [br.into(), wi.into()]);
    let biwr = kb.push(lp, Opcode::FMul, [bi.into(), wr.into()]);
    let tr = kb.push(lp, Opcode::FSub, [brwr.into(), biwi.into()]);
    let ti = kb.push(lp, Opcode::FAdd, [brwi.into(), biwr.into()]);

    // a' = a + t; b' = a - t
    let ar1 = kb.push(lp, Opcode::FAdd, [ar.into(), tr.into()]);
    let ai1 = kb.push(lp, Opcode::FAdd, [ai.into(), ti.into()]);
    let br1 = kb.push(lp, Opcode::FSub, [ar.into(), tr.into()]);
    let bi1 = kb.push(lp, Opcode::FSub, [ai.into(), ti.into()]);

    kb.store(lp, out, two_i.into(), OUT_BASE.into(), ar1.into());
    kb.store(lp, out, two_i.into(), (OUT_BASE + 1).into(), ai1.into());
    kb.store(
        lp,
        out,
        two_i.into(),
        (OUT_BASE + 2 * HALF).into(),
        br1.into(),
    );
    kb.store(
        lp,
        out,
        two_i.into(),
        (OUT_BASE + 2 * HALF + 1).into(),
        bi1.into(),
    );

    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().expect("FFT kernel is well-formed")
}

fn inputs(trip: u64) -> Memory {
    let mut r = prand(0xFF7);
    let mut mem = Memory::new();
    // Butterfly pairs at i and i + HALF (complex interleaved).
    for i in 0..trip as i64 {
        for off in [0, 1] {
            mem.main
                .insert(IN_BASE + 2 * i + off, Word::F(small_float(&mut r)));
            mem.main
                .insert(IN_BASE + 2 * (i + HALF) + off, Word::F(small_float(&mut r)));
            mem.main
                .insert(AUX_BASE + 2 * i + off, Word::F(small_float(&mut r)));
        }
    }
    mem
}

fn expected(trip: u64) -> Vec<(i64, Word)> {
    let mem = inputs(trip);
    let f = |addr: i64| mem.main[&addr].as_float().expect("float inputs");
    let mut out = Vec::new();
    for i in 0..trip as i64 {
        let (ar, ai) = (f(IN_BASE + 2 * i), f(IN_BASE + 2 * i + 1));
        let (br, bi) = (f(IN_BASE + 2 * (i + HALF)), f(IN_BASE + 2 * (i + HALF) + 1));
        let (wr, wi) = (f(AUX_BASE + 2 * i), f(AUX_BASE + 2 * i + 1));
        let tr = br * wr - bi * wi;
        let ti = br * wi + bi * wr;
        out.push((OUT_BASE + 2 * i, Word::F(ar + tr)));
        out.push((OUT_BASE + 2 * i + 1, Word::F(ai + ti)));
        out.push((OUT_BASE + 2 * (i + HALF), Word::F(ar - tr)));
        out.push((OUT_BASE + 2 * (i + HALF) + 1, Word::F(ai - ti)));
    }
    out
}

/// The `FFT` workload.
pub fn fft() -> Workload {
    Workload {
        kernel: build(),
        trip: 8,
        inputs,
        expected,
    }
}

fn inputs_u4(trip: u64) -> Memory {
    inputs(trip * 4)
}

fn expected_u4(trip: u64) -> Vec<(i64, Word)> {
    expected(trip * 4)
}

/// The `FFT-U4` workload (inner loop unrolled four times).
pub fn fft_u4() -> Workload {
    let base = build();
    let mut kernel = unroll(&base, 4).expect("FFT unrolls cleanly");
    // Keep the paper's kernel name.
    kernel = rename(
        kernel,
        "FFT-U4",
        "FFT with the inner loop unrolled four times.",
    );
    Workload {
        kernel,
        trip: 2, // 2 unrolled iterations = 8 butterflies
        inputs: inputs_u4,
        expected: expected_u4,
    }
}

pub(crate) fn rename(kernel: Kernel, name: &str, description: &str) -> Kernel {
    let mut k = kernel;
    k.set_name(name, description);
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_matches_reference() {
        fft().self_check().unwrap();
    }

    #[test]
    fn fft_u4_matches_reference() {
        fft_u4().self_check().unwrap();
    }

    #[test]
    fn unrolled_body_is_four_times_larger() {
        assert_eq!(
            fft_u4().kernel.loop_ops().len(),
            fft().kernel.loop_ops().len() * 4
        );
        assert_eq!(fft_u4().kernel.name(), "FFT-U4");
    }
}
