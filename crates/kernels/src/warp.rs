//! `Block Warp`, `Block Warp-U2` and `Triangle Transform` (Table 1).
//!
//! Block Warp "performs a 3-D perspective transformation used for
//! point-sample rendering": each iteration loads one point, applies a
//! 4×4 projective transform with compile-time matrix immediates, divides
//! by `w` (one reciprocal, shared by the three coordinates), and stores
//! the screen-space point. Triangle Transform applies the same transform
//! to the three vertices of a triangle per iteration — three divides per
//! iteration, making it the most divider-bound kernel in the suite.

use csched_ir::{unroll, BlockId, Kernel, KernelBuilder, Memory, RegionId, ValueId, Word};
use csched_machine::Opcode;

use crate::workload::{prand, small_float, Workload, IN_BASE, OUT_BASE};

/// The fixed 4×4 transform matrix (deterministic, mildly perspective).
pub fn matrix() -> [[f64; 4]; 4] {
    let mut r = prand(0x3A9);
    let mut m = [[0.0; 4]; 4];
    for row in &mut m {
        for cell in row.iter_mut() {
            *cell = small_float(&mut r) * 0.5;
        }
    }
    // Keep w safely away from zero: dominate with a constant term.
    m[3] = [0.05, -0.04, 0.06, 4.0];
    m
}

/// Scalar reference for one point.
pub fn warp_reference(p: [f64; 3]) -> [f64; 3] {
    let m = matrix();
    let row = |r: usize| m[r][0] * p[0] + m[r][1] * p[1] + m[r][2] * p[2] + m[r][3];
    let (tx, ty, tz, w) = (row(0), row(1), row(2), row(3));
    let inv = 1.0 / w;
    [tx * inv, ty * inv, tz * inv]
}

/// Emits the transform of the point at `in_addr_base + 3·index` into
/// `out_addr_base + 3·index`, given the per-iteration element index value.
fn emit_point(
    kb: &mut KernelBuilder,
    lp: BlockId,
    input: RegionId,
    output: RegionId,
    index3: ValueId,
    vertex: i64,
) {
    let m = matrix();
    let mut coords = Vec::with_capacity(3);
    for c in 0..3i64 {
        coords.push(kb.load(lp, input, index3.into(), (IN_BASE + 3 * vertex + c).into()));
    }
    let row = |kb: &mut KernelBuilder, r: usize| -> ValueId {
        let mut acc: Option<ValueId> = None;
        for (c, &coord) in coords.iter().enumerate() {
            let prod = kb.push(lp, Opcode::FMul, [coord.into(), m[r][c].into()]);
            acc = Some(match acc {
                None => prod,
                Some(a) => kb.push(lp, Opcode::FAdd, [a.into(), prod.into()]),
            });
        }
        kb.push(
            lp,
            Opcode::FAdd,
            [acc.expect("3 coords").into(), m[r][3].into()],
        )
    };
    let tx = row(kb, 0);
    let ty = row(kb, 1);
    let tz = row(kb, 2);
    let w = row(kb, 3);
    let inv = kb.push(lp, Opcode::FDiv, [1.0f64.into(), w.into()]);
    for (c, t) in [tx, ty, tz].into_iter().enumerate() {
        let s = kb.push(lp, Opcode::FMul, [t.into(), inv.into()]);
        kb.store(
            lp,
            output,
            index3.into(),
            (OUT_BASE + 3 * vertex + c as i64).into(),
            s.into(),
        );
    }
}

fn build(name: &str, description: &str, vertices: i64) -> Kernel {
    let mut kb = KernelBuilder::new(name);
    kb.description(description);
    let input = kb.region("points", true);
    let output = kb.region("screen", true);
    let lp = kb.loop_block("element");
    let i = kb.loop_var(lp, 0i64.into());
    kb.name_value(i, "i");
    // 3 * vertices words per element.
    let stride = 3 * vertices;
    let scaled = kb.push(lp, Opcode::IMul, [i.into(), stride.into()]);
    for v in 0..vertices {
        emit_point(&mut kb, lp, input, output, scaled, v);
    }
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().expect("warp kernels are well-formed")
}

fn inputs_for(trip: u64, vertices: i64, tag: u64) -> Memory {
    let mut r = prand(tag);
    let mut mem = Memory::new();
    mem.write_block(
        IN_BASE,
        (0..trip as usize * 3 * vertices as usize).map(|_| Word::F(small_float(&mut r))),
    );
    mem
}

fn expected_for(trip: u64, vertices: i64, tag: u64) -> Vec<(i64, Word)> {
    let mem = inputs_for(trip, vertices, tag);
    let mut out = Vec::new();
    for e in 0..trip as i64 {
        for v in 0..vertices {
            let base = 3 * vertices * e + 3 * v;
            let words = mem.read_block(IN_BASE + base, 3);
            let p = [
                words[0].as_float().expect("float"),
                words[1].as_float().expect("float"),
                words[2].as_float().expect("float"),
            ];
            let s = warp_reference(p);
            for (c, &val) in s.iter().enumerate() {
                out.push((OUT_BASE + base + c as i64, Word::F(val)));
            }
        }
    }
    out
}

fn warp_inputs(trip: u64) -> Memory {
    inputs_for(trip, 1, 0x3AA)
}

fn warp_expected(trip: u64) -> Vec<(i64, Word)> {
    expected_for(trip, 1, 0x3AA)
}

fn tri_inputs(trip: u64) -> Memory {
    inputs_for(trip, 3, 0x3AB)
}

fn tri_expected(trip: u64) -> Vec<(i64, Word)> {
    expected_for(trip, 3, 0x3AB)
}

/// The `Block Warp` workload.
pub fn block_warp() -> Workload {
    Workload {
        kernel: build(
            "Block Warp",
            "Performs a 3-D perspective transformation used for point-sample rendering.",
            1,
        ),
        trip: 8,
        inputs: warp_inputs,
        expected: warp_expected,
    }
}

fn warp_inputs_u2(trip: u64) -> Memory {
    warp_inputs(trip * 2)
}

fn warp_expected_u2(trip: u64) -> Vec<(i64, Word)> {
    warp_expected(trip * 2)
}

/// The `Block Warp-U2` workload (inner loop unrolled twice).
pub fn block_warp_u2() -> Workload {
    let base = block_warp().kernel;
    let kernel = crate::fft::rename(
        unroll(&base, 2).expect("warp unrolls cleanly"),
        "Block Warp-U2",
        "Block Warp with the inner loop unrolled twice.",
    );
    Workload {
        kernel,
        trip: 4,
        inputs: warp_inputs_u2,
        expected: warp_expected_u2,
    }
}

/// The `Triangle Transform` workload.
pub fn triangle_transform() -> Workload {
    Workload {
        kernel: build(
            "Triangle Transform",
            "Performs a 3-D perspective transformation on a stream of triangles.",
            3,
        ),
        trip: 4,
        inputs: tri_inputs,
        expected: tri_expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_warp_matches_reference() {
        block_warp().self_check().unwrap();
    }

    #[test]
    fn block_warp_u2_matches_reference() {
        block_warp_u2().self_check().unwrap();
    }

    #[test]
    fn triangle_matches_reference() {
        triangle_transform().self_check().unwrap();
    }

    #[test]
    fn divide_counts() {
        assert_eq!(block_warp().kernel.opcode_histogram()[&Opcode::FDiv], 1);
        assert_eq!(block_warp_u2().kernel.opcode_histogram()[&Opcode::FDiv], 2);
        assert_eq!(
            triangle_transform().kernel.opcode_histogram()[&Opcode::FDiv],
            3
        );
    }

    #[test]
    fn w_stays_away_from_zero() {
        let mut r = prand(12345);
        for _ in 0..1000 {
            let p = [
                small_float(&mut r),
                small_float(&mut r),
                small_float(&mut r),
            ];
            let m = matrix();
            let w = m[3][0] * p[0] + m[3][1] * p[1] + m[3][2] * p[2] + m[3][3];
            assert!(w.abs() > 1.0, "w = {w}");
        }
    }
}
