//! `Sort` and `Merge` (Table 1).
//!
//! `Sort` "sorts 32 elements into an ordered set": each iteration loads a
//! block of eight elements, pushes it through Batcher's 19-comparator
//! odd-even merge network (compare-exchanges built from `imin`/`imax`),
//! and stores the sorted block; four iterations sort the 32 elements into
//! four ordered runs that `Merge` consumes. `Merge` "merges two streams of
//! sorted elements into a single sorted stream" with the classic
//! branchless select-and-advance loop, whose load→compare→index-update
//! recurrence makes it the most recurrence-bound kernel of the suite.

use csched_ir::{Kernel, KernelBuilder, Memory, ValueId, Word};
use csched_machine::Opcode;

use crate::workload::{prand, small_int, Workload, AUX_BASE, IN_BASE, OUT_BASE};

/// Batcher's odd-even merge sorting network for eight inputs
/// (19 compare-exchange pairs).
pub const NETWORK8: [(usize, usize); 19] = [
    (0, 1),
    (2, 3),
    (4, 5),
    (6, 7),
    (0, 2),
    (1, 3),
    (4, 6),
    (5, 7),
    (1, 2),
    (5, 6),
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
    (2, 4),
    (3, 5),
    (1, 2),
    (3, 4),
    (5, 6),
];

fn build_sort() -> Kernel {
    let mut kb = KernelBuilder::new("Sort");
    kb.description("Sorts 32 elements into an ordered set.");
    let input = kb.region("unsorted", true);
    let output = kb.region("runs", true);
    let lp = kb.loop_block("block");
    let i = kb.loop_var(lp, 0i64.into());
    kb.name_value(i, "block");

    let base = kb.push(lp, Opcode::Shl, [i.into(), 3i64.into()]);
    let mut v: Vec<ValueId> = (0..8)
        .map(|k| kb.load(lp, input, base.into(), (IN_BASE + k).into()))
        .collect();
    for &(a, b) in &NETWORK8 {
        let lo = kb.push(lp, Opcode::IMin, [v[a].into(), v[b].into()]);
        let hi = kb.push(lp, Opcode::IMax, [v[a].into(), v[b].into()]);
        v[a] = lo;
        v[b] = hi;
    }
    for (k, &val) in v.iter().enumerate() {
        kb.store(
            lp,
            output,
            base.into(),
            (OUT_BASE + k as i64).into(),
            val.into(),
        );
    }
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().expect("Sort kernel is well-formed")
}

fn sort_inputs(trip: u64) -> Memory {
    let mut r = prand(0x5027);
    let mut mem = Memory::new();
    mem.write_block(
        IN_BASE,
        (0..8 * trip as usize).map(|_| Word::I(small_int(&mut r, 999))),
    );
    mem
}

fn sort_expected(trip: u64) -> Vec<(i64, Word)> {
    let mem = sort_inputs(trip);
    let mut out = Vec::new();
    for blk in 0..trip as i64 {
        let mut xs: Vec<i64> = mem
            .read_block(IN_BASE + 8 * blk, 8)
            .iter()
            .map(|w| w.as_int().expect("int"))
            .collect();
        xs.sort_unstable();
        for (k, &x) in xs.iter().enumerate() {
            out.push((OUT_BASE + 8 * blk + k as i64, Word::I(x)));
        }
    }
    out
}

/// The `Sort` workload (four 8-element blocks = 32 elements).
pub fn sort() -> Workload {
    Workload {
        kernel: build_sort(),
        trip: 4,
        inputs: sort_inputs,
        expected: sort_expected,
    }
}

fn build_merge() -> Kernel {
    let mut kb = KernelBuilder::new("Merge");
    kb.description("Merges two streams of sorted elements into a single sorted stream.");
    let stream_a = kb.region("a", false); // data-dependent re-reads
    let stream_b = kb.region("b", false);
    let output = kb.region("merged", true);
    let lp = kb.loop_block("emit");
    let a = kb.loop_var(lp, 0i64.into());
    let b = kb.loop_var(lp, 0i64.into());
    let i = kb.loop_var(lp, 0i64.into());
    kb.name_value(a, "a");
    kb.name_value(b, "b");
    kb.name_value(i, "i");

    let x = kb.load(lp, stream_a, a.into(), IN_BASE.into());
    let y = kb.load(lp, stream_b, b.into(), AUX_BASE.into());
    let take_a = kb.push(lp, Opcode::ICmpLe, [x.into(), y.into()]);
    let out = kb.push(lp, Opcode::Select, [take_a.into(), x.into(), y.into()]);
    kb.store(lp, output, i.into(), OUT_BASE.into(), out.into());
    let a1 = kb.push(lp, Opcode::IAdd, [a.into(), take_a.into()]);
    let not_take = kb.push(lp, Opcode::ISub, [1i64.into(), take_a.into()]);
    let b1 = kb.push(lp, Opcode::IAdd, [b.into(), not_take.into()]);
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(a, a1.into());
    kb.set_update(b, b1.into());
    kb.set_update(i, i1.into());
    kb.build().expect("Merge kernel is well-formed")
}

fn merge_inputs(trip: u64) -> Memory {
    let mut r = prand(0x3E6);
    let mut mem = Memory::new();
    // Two sorted streams, each long enough that indices stay in range.
    let mut xs: Vec<i64> = (0..trip).map(|_| small_int(&mut r, 500)).collect();
    let mut ys: Vec<i64> = (0..trip).map(|_| small_int(&mut r, 500)).collect();
    xs.sort_unstable();
    ys.sort_unstable();
    mem.write_block(IN_BASE, xs.into_iter().map(Word::I));
    mem.write_block(AUX_BASE, ys.into_iter().map(Word::I));
    mem
}

fn merge_expected(trip: u64) -> Vec<(i64, Word)> {
    let mem = merge_inputs(trip);
    let xs = mem.read_block(IN_BASE, trip as usize);
    let ys = mem.read_block(AUX_BASE, trip as usize);
    let (mut a, mut b) = (0usize, 0usize);
    let mut out = Vec::new();
    for i in 0..trip as usize {
        let x = xs[a].as_int().expect("int");
        let y = ys[b].as_int().expect("int");
        if x <= y {
            out.push((OUT_BASE + i as i64, Word::I(x)));
            a += 1;
        } else {
            out.push((OUT_BASE + i as i64, Word::I(y)));
            b += 1;
        }
    }
    out
}

/// The `Merge` workload.
///
/// The merge emits `trip` elements, consuming at most `trip - 1` from
/// either stream, so indices never run past the provided arrays.
pub fn merge() -> Workload {
    Workload {
        kernel: build_merge(),
        trip: 16,
        inputs: merge_inputs,
        expected: merge_expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_matches_reference() {
        // The scalar reference uses a library sort, so this also proves the
        // 19-comparator network really sorts.
        sort().self_check().unwrap();
    }

    #[test]
    fn merge_matches_reference() {
        merge().self_check().unwrap();
    }

    #[test]
    fn network_has_19_comparators() {
        assert_eq!(NETWORK8.len(), 19);
        let h = sort().kernel.opcode_histogram();
        assert_eq!(h[&Opcode::IMin], 19);
        assert_eq!(h[&Opcode::IMax], 19);
    }

    #[test]
    fn network_sorts_all_zero_one_vectors() {
        // 0-1 principle: a network that sorts every 0/1 vector sorts
        // everything.
        for mask in 0u32..256 {
            let mut v: Vec<i64> = (0..8).map(|k| ((mask >> k) & 1) as i64).collect();
            for &(a, b) in &NETWORK8 {
                let (lo, hi) = (v[a].min(v[b]), v[a].max(v[b]));
                v[a] = lo;
                v[b] = hi;
            }
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "mask {mask:#b}: {v:?}");
        }
    }

    #[test]
    fn merge_is_recurrence_bound() {
        use csched_ir::DepGraph;
        let w = merge();
        let g = DepGraph::build(&w.kernel, csched_machine::default_latency);
        // load (4) + compare (1) + index add (1) around the loop.
        assert!(g.rec_mii(&w.kernel) >= 6);
    }
}
