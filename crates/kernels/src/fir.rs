//! FIR filters (Table 1: `FIR-FP`, 56-tap floating point, and `FIR-INT`,
//! 16-bit integer coefficients and data).
//!
//! Each loop iteration produces one output sample:
//! `y[i] = Σ_t c[t] · x[i + t]` with the 56 coefficients baked into the
//! multiply immediates (the filter is fixed at compile time). The sliding
//! input window is re-loaded each iteration, so the kernel streams 56
//! loads, 56 multiplies and 55 adds per output — a multiplier-bound body,
//! as in the paper.

use csched_ir::{Kernel, KernelBuilder, Memory, Operand, Word};
use csched_machine::Opcode;

use crate::workload::{prand, small_float, small_int, Workload, IN_BASE, OUT_BASE};

/// Number of filter taps (paper: "56-tap ... FIR filter").
pub const TAPS: usize = 56;

/// The floating-point coefficient table (deterministic, roughly ±1).
pub fn coefficients_fp() -> [f64; TAPS] {
    let mut r = prand(0xF1F1);
    let mut c = [0.0; TAPS];
    for slot in c.iter_mut() {
        *slot = small_float(&mut r);
    }
    c
}

/// The integer coefficient table (16-bit range).
pub fn coefficients_int() -> [i64; TAPS] {
    let mut r = prand(0xF1F2);
    let mut c = [0i64; TAPS];
    for slot in c.iter_mut() {
        *slot = small_int(&mut r, 127);
    }
    c
}

fn build(name: &str, float: bool) -> Kernel {
    let mut kb = KernelBuilder::new(name);
    kb.description(if float {
        "Finite-Impulse-Response Filter: 56-tap floating-point FIR filter."
    } else {
        "FIR with 16-bit integer coefficients and data."
    });
    let input = kb.region("x", false); // windows overlap across iterations
    let output = kb.region("y", true);
    let lp = kb.loop_block("sample");
    let i = kb.loop_var(lp, 0i64.into());
    kb.name_value(i, "i");

    let (mul, add): (Opcode, Opcode) = if float {
        (Opcode::FMul, Opcode::FAdd)
    } else {
        (Opcode::IMul, Opcode::IAdd)
    };
    let coeff = |t: usize| -> Operand {
        if float {
            coefficients_fp()[t].into()
        } else {
            coefficients_int()[t].into()
        }
    };

    // Balanced tree reduction of the 56 products (the association order is
    // mirrored exactly by the scalar reference).
    let mut level: Vec<csched_ir::ValueId> = (0..TAPS)
        .map(|t| {
            let x = kb.load(lp, input, i.into(), (IN_BASE + t as i64).into());
            kb.push(lp, mul, [x.into(), coeff(t)])
        })
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2 + 1);
        for pair in level.chunks(2) {
            next.push(match pair {
                [a, b] => kb.push(lp, add, [(*a).into(), (*b).into()]),
                [a] => *a,
                _ => unreachable!("chunks(2)"),
            });
        }
        level = next;
    }
    kb.store(lp, output, i.into(), OUT_BASE.into(), level[0].into());
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().expect("FIR kernel is well-formed")
}

fn inputs_fp(trip: u64) -> Memory {
    let mut r = prand(0xF1F3);
    let mut mem = Memory::new();
    mem.write_block(
        IN_BASE,
        (0..trip as usize + TAPS).map(|_| Word::F(small_float(&mut r))),
    );
    mem
}

fn expected_fp(trip: u64) -> Vec<(i64, Word)> {
    let mem = inputs_fp(trip);
    let c = coefficients_fp();
    let x = mem.read_block(IN_BASE, trip as usize + TAPS);
    (0..trip as usize)
        .map(|i| {
            // Same association order as the kernel: balanced tree.
            let mut level: Vec<f64> = c
                .iter()
                .enumerate()
                .map(|(t, &ct)| x[i + t].as_float().expect("float inputs") * ct)
                .collect();
            while level.len() > 1 {
                level = level
                    .chunks(2)
                    .map(|p| if p.len() == 2 { p[0] + p[1] } else { p[0] })
                    .collect();
            }
            (OUT_BASE + i as i64, Word::F(level[0]))
        })
        .collect()
}

fn inputs_int(trip: u64) -> Memory {
    let mut r = prand(0xF1F4);
    let mut mem = Memory::new();
    mem.write_block(
        IN_BASE,
        (0..trip as usize + TAPS).map(|_| Word::I(small_int(&mut r, 255))),
    );
    mem
}

fn expected_int(trip: u64) -> Vec<(i64, Word)> {
    let mem = inputs_int(trip);
    let c = coefficients_int();
    let x = mem.read_block(IN_BASE, trip as usize + TAPS);
    (0..trip as usize)
        .map(|i| {
            let mut acc = 0i64;
            for (t, &ct) in c.iter().enumerate() {
                acc = acc.wrapping_add(x[i + t].as_int().expect("int inputs").wrapping_mul(ct));
            }
            (OUT_BASE + i as i64, Word::I(acc))
        })
        .collect()
}

/// The `FIR-FP` workload.
pub fn fir_fp() -> Workload {
    Workload {
        kernel: build("FIR-FP", true),
        trip: 8,
        inputs: inputs_fp,
        expected: expected_fp,
    }
}

/// The `FIR-INT` workload.
pub fn fir_int() -> Workload {
    Workload {
        kernel: build("FIR-INT", false),
        trip: 8,
        inputs: inputs_int,
        expected: expected_int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_fp_matches_reference() {
        fir_fp().self_check().unwrap();
    }

    #[test]
    fn fir_int_matches_reference() {
        fir_int().self_check().unwrap();
    }

    #[test]
    fn body_is_multiplier_heavy() {
        let w = fir_fp();
        let h = w.kernel.opcode_histogram();
        assert_eq!(h[&Opcode::FMul], TAPS);
        assert_eq!(h[&Opcode::FAdd], TAPS - 1);
        assert_eq!(h[&Opcode::Load], TAPS);
        assert_eq!(h[&Opcode::Store], 1);
    }
}
