//! Perf-regression bench harness: structured scheduling-throughput
//! measurements and a regression comparator.
//!
//! The measurement loop that `scale-perf` used to inline lives here as
//! library functions: [`measure_cell`] schedules one kernel on one
//! architecture `reps` times and records the wall-clock schedule time
//! next to the run's *deterministic* outcomes (achieved II, copies,
//! placement attempts — identical on every machine because the scheduler
//! is deterministic), and [`run_bench`] sweeps a kernel×architecture
//! grid into a [`BenchReport`].
//!
//! Reports serialise to `BENCH_<label>.json` ([`bench_json`], parsed
//! back by [`parse_bench_json`]); [`deterministic_json`] is the same
//! document with the timing fields stripped, and is byte-identical
//! across runs of the same build. [`compare`] diffs two reports the way
//! `ci.sh` does: deterministic fields exactly (any drift is a
//! regression), wall clock within a ratio tolerance (advisory by
//! default, because the committed baseline was measured on different
//! hardware).

use std::fmt::Write as _;
use std::time::Instant;

use csched_core::trace::json_escape;
use csched_core::{schedule_kernel, validate, SchedulerConfig};
use csched_ir::Kernel;
use csched_machine::Architecture;

use crate::campaign::{json_num_field, json_str_field};

/// One measured kernel×architecture cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchCell {
    /// Kernel name.
    pub kernel: String,
    /// Architecture name.
    pub arch: String,
    /// Whether scheduling (and validation) succeeded.
    pub ok: bool,
    /// Error text when `!ok`, empty otherwise.
    pub detail: String,
    /// Achieved loop II (0 when failed or loop-free). Deterministic.
    pub ii: u32,
    /// Copy operations inserted. Deterministic.
    pub copies: u64,
    /// Placement attempts made. Deterministic.
    pub attempts: u64,
    /// Fastest schedule time over the reps, in nanoseconds.
    pub best_ns: u64,
    /// Mean schedule time over the reps, in nanoseconds.
    pub mean_ns: u64,
}

impl BenchCell {
    /// Placement attempts per second at the best-rep speed (0 when
    /// unmeasured).
    pub fn attempts_per_sec(&self) -> u64 {
        if self.best_ns == 0 {
            0
        } else {
            ((self.attempts as u128 * 1_000_000_000) / self.best_ns as u128) as u64
        }
    }
}

/// A labelled sweep of measured cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchReport {
    /// The label baked into the file name (`BENCH_<label>.json`).
    pub label: String,
    /// Scheduling repetitions per cell (best/mean are over these).
    pub reps: u32,
    /// One entry per kernel×architecture pair, in sweep order.
    pub cells: Vec<BenchCell>,
}

/// Errors from parsing a bench JSON document.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BenchParseError {
    /// The document header (label/reps) is missing or malformed.
    Header,
    /// A cell line failed to parse.
    Cell {
        /// 1-based line number within the document.
        line: usize,
    },
}

impl std::fmt::Display for BenchParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchParseError::Header => write!(f, "missing or malformed bench header"),
            BenchParseError::Cell { line } => write!(f, "malformed bench cell on line {line}"),
        }
    }
}

impl std::error::Error for BenchParseError {}

/// Schedules `kernel` on `arch` `reps` times, validating the final
/// schedule, and returns the measured cell. A scheduling or validation
/// failure is recorded in the cell (`ok: false`, the error in `detail`)
/// rather than returned, so a sweep never aborts on one bad cell.
pub fn measure_cell(
    arch: &Architecture,
    kernel: &Kernel,
    config: &SchedulerConfig,
    reps: u32,
) -> BenchCell {
    let mut cell = BenchCell {
        kernel: kernel.name().to_string(),
        arch: arch.name().to_string(),
        ok: false,
        detail: String::new(),
        ii: 0,
        copies: 0,
        attempts: 0,
        best_ns: 0,
        mean_ns: 0,
    };
    let reps = reps.max(1);
    let mut total_ns: u128 = 0;
    let mut best_ns: u64 = u64::MAX;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let result = schedule_kernel(arch, kernel, config.clone());
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        total_ns += ns as u128;
        best_ns = best_ns.min(ns);
        match result {
            Ok(s) => last = Some(s),
            Err(e) => {
                cell.detail = e.to_string();
                return cell;
            }
        }
    }
    cell.best_ns = best_ns;
    cell.mean_ns = (total_ns / reps as u128) as u64;
    let Some(schedule) = last else {
        cell.detail = "no schedule produced".to_string();
        return cell;
    };
    if let Err(errors) = validate::validate(arch, kernel, &schedule) {
        let first = errors
            .first()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "unknown".to_string());
        cell.detail = format!("validation failed ({} errors): {first}", errors.len());
        return cell;
    }
    cell.ok = true;
    cell.ii = schedule.ii().unwrap_or(0);
    cell.copies = schedule.num_copies() as u64;
    cell.attempts = schedule.stats().attempts;
    cell
}

/// Measures every kernel×architecture pair (kernels outer, architectures
/// inner) into a [`BenchReport`].
pub fn run_bench(
    label: &str,
    reps: u32,
    kernels: &[&Kernel],
    archs: &[Architecture],
    config: &SchedulerConfig,
) -> BenchReport {
    run_bench_jobs(label, reps, kernels, archs, config, 1)
}

/// [`run_bench`] on up to `jobs` worker threads. The deterministic
/// fields ([`deterministic_json`]) are byte-identical for every `jobs`;
/// the timing fields are *noisier* under parallelism (cells contend for
/// cores), so regression baselines should stay single-threaded while
/// exploratory sweeps can afford the speed-up.
pub fn run_bench_jobs(
    label: &str,
    reps: u32,
    kernels: &[&Kernel],
    archs: &[Architecture],
    config: &SchedulerConfig,
    jobs: usize,
) -> BenchReport {
    let mut items: Vec<(&Kernel, &Architecture)> = Vec::with_capacity(kernels.len() * archs.len());
    for kernel in kernels {
        for arch in archs {
            items.push((kernel, arch));
        }
    }
    let cells = match crate::pool::run_indexed(
        &items,
        jobs,
        |_, &(kernel, arch)| measure_cell(arch, kernel, config, reps),
        |_, _| Ok::<(), std::convert::Infallible>(()),
    ) {
        Ok(cells) => cells,
        Err(never) => match never {},
    };
    BenchReport {
        label: label.to_string(),
        reps: reps.max(1),
        cells,
    }
}

fn cell_json(cell: &BenchCell, timings: bool) -> String {
    let mut s = String::with_capacity(160);
    let _ = write!(
        s,
        "{{\"kernel\":\"{}\",\"arch\":\"{}\",\"ok\":{},\"detail\":\"{}\",\"ii\":{},\
         \"copies\":{},\"attempts\":{}",
        json_escape(&cell.kernel),
        json_escape(&cell.arch),
        cell.ok,
        json_escape(&cell.detail),
        cell.ii,
        cell.copies,
        cell.attempts
    );
    if timings {
        let _ = write!(
            s,
            ",\"best_ns\":{},\"mean_ns\":{},\"attempts_per_sec\":{}",
            cell.best_ns,
            cell.mean_ns,
            cell.attempts_per_sec()
        );
    }
    s.push('}');
    s
}

fn report_json(report: &BenchReport, timings: bool) -> String {
    let mut s = String::with_capacity(256 + report.cells.len() * 160);
    let _ = write!(
        s,
        "{{\"bench\":{{\"label\":\"{}\",\"reps\":{}}},\"cells\":[",
        json_escape(&report.label),
        report.reps
    );
    for (i, cell) in report.cells.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&cell_json(cell, timings));
    }
    s.push_str("\n]}\n");
    s
}

/// Serialises a report as the `BENCH_<label>.json` document: a header
/// line plus one line per cell (timing fields included).
pub fn bench_json(report: &BenchReport) -> String {
    report_json(report, true)
}

/// [`bench_json`] with the machine-dependent timing fields
/// (`best_ns`/`mean_ns`/`attempts_per_sec`) stripped. For a
/// deterministic scheduler this document is byte-identical across runs
/// of the same build — the property the regression tests pin down.
pub fn deterministic_json(report: &BenchReport) -> String {
    report_json(report, false)
}

/// Parses a document produced by [`bench_json`] (or
/// [`deterministic_json`]; missing timing fields read as 0).
///
/// # Errors
///
/// Returns a [`BenchParseError`] naming the malformed line.
pub fn parse_bench_json(text: &str) -> Result<BenchReport, BenchParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(BenchParseError::Header)?;
    if !header.starts_with("{\"bench\":") {
        return Err(BenchParseError::Header);
    }
    let label = json_str_field(header, "label").ok_or(BenchParseError::Header)?;
    let reps = u32::try_from(json_num_field(header, "reps").ok_or(BenchParseError::Header)?)
        .map_err(|_| BenchParseError::Header)?;
    let mut cells = Vec::new();
    for (i, line) in lines {
        let line = line.trim_end_matches(',');
        if !line.starts_with("{\"kernel\":") {
            continue; // the closing "]}" line (and any blank tail)
        }
        let cell = (|| {
            let ok = if line.contains("\"ok\":true") {
                true
            } else if line.contains("\"ok\":false") {
                false
            } else {
                return None;
            };
            Some(BenchCell {
                kernel: json_str_field(line, "kernel")?,
                arch: json_str_field(line, "arch")?,
                ok,
                detail: json_str_field(line, "detail")?,
                ii: u32::try_from(json_num_field(line, "ii")?).ok()?,
                copies: json_num_field(line, "copies")?,
                attempts: json_num_field(line, "attempts")?,
                best_ns: json_num_field(line, "best_ns").unwrap_or(0),
                mean_ns: json_num_field(line, "mean_ns").unwrap_or(0),
            })
        })()
        .ok_or(BenchParseError::Cell { line: i + 1 })?;
        cells.push(cell);
    }
    Ok(BenchReport { label, reps, cells })
}

/// Outcome of diffing two bench reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompareReport {
    /// Cells present in both reports.
    pub compared: usize,
    /// Hard regressions: deterministic drift or lost coverage. Any entry
    /// here should fail CI.
    pub failures: Vec<String>,
    /// Soft findings: wall-clock slowdowns beyond the tolerance, or new
    /// cells absent from the baseline.
    pub advisories: Vec<String>,
}

impl CompareReport {
    /// Renders the outcome as a terminal report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compared {} cells: {} regression(s), {} advisory(ies)",
            self.compared,
            self.failures.len(),
            self.advisories.len()
        );
        for f in &self.failures {
            let _ = writeln!(out, "  REGRESSION: {f}");
        }
        for a in &self.advisories {
            let _ = writeln!(out, "  advisory:   {a}");
        }
        out
    }
}

/// Diffs `current` against `baseline`.
///
/// Deterministic fields (`ok`, `ii`, `copies`, `attempts`) must match
/// exactly; a baseline cell missing from `current` is lost coverage.
/// Both are hard failures. Wall clock is compared as a ratio of
/// `best_ns`: a slowdown beyond `time_tolerance` (e.g. `2.0` = twice as
/// slow) is reported as an advisory, since absolute times are
/// machine-dependent.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    time_tolerance: f64,
) -> CompareReport {
    let mut report = CompareReport::default();
    let find = |cells: &[BenchCell], kernel: &str, arch: &str| -> Option<BenchCell> {
        cells
            .iter()
            .find(|c| c.kernel == kernel && c.arch == arch)
            .cloned()
    };
    for base in &baseline.cells {
        let key = format!("{} on {}", base.kernel, base.arch);
        let Some(cur) = find(&current.cells, &base.kernel, &base.arch) else {
            report
                .failures
                .push(format!("{key}: cell missing from current report"));
            continue;
        };
        report.compared += 1;
        if base.ok != cur.ok {
            report.failures.push(format!(
                "{key}: ok {} -> {}{}",
                base.ok,
                cur.ok,
                if cur.detail.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", cur.detail)
                }
            ));
            continue;
        }
        for (what, b, c) in [
            ("II", base.ii as u64, cur.ii as u64),
            ("copies", base.copies, cur.copies),
            ("attempts", base.attempts, cur.attempts),
        ] {
            if b != c {
                report.failures.push(format!("{key}: {what} {b} -> {c}"));
            }
        }
        if base.best_ns > 0 && cur.best_ns > 0 {
            let ratio = cur.best_ns as f64 / base.best_ns as f64;
            if ratio > time_tolerance {
                report.advisories.push(format!(
                    "{key}: {:.2}x slower ({} ns -> {} ns best-of-{})",
                    ratio, base.best_ns, cur.best_ns, current.reps
                ));
            }
        }
    }
    for cur in &current.cells {
        if find(&baseline.cells, &cur.kernel, &cur.arch).is_none() {
            report.advisories.push(format!(
                "{} on {}: new cell not in baseline",
                cur.kernel, cur.arch
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_machine::imagine;

    fn tiny_report() -> BenchReport {
        let w = csched_kernels::by_name("Merge").unwrap();
        run_bench(
            "test",
            1,
            &[&w.kernel],
            &[imagine::central(), imagine::distributed()],
            &SchedulerConfig::default(),
        )
    }

    #[test]
    fn roundtrips_through_json() {
        let report = tiny_report();
        let parsed = parse_bench_json(&bench_json(&report)).unwrap();
        assert_eq!(parsed, report);
        // And the deterministic form parses too, timings zeroed.
        let det = parse_bench_json(&deterministic_json(&report)).unwrap();
        assert_eq!(det.cells.len(), report.cells.len());
        assert!(det.cells.iter().all(|c| c.best_ns == 0));
    }

    #[test]
    fn deterministic_fields_are_byte_identical_across_runs() {
        let a = tiny_report();
        let b = tiny_report();
        assert_eq!(deterministic_json(&a), deterministic_json(&b));
    }

    #[test]
    fn compare_flags_deterministic_drift_and_tolerates_slowness() {
        let base = tiny_report();
        let mut cur = base.clone();
        // Same report: clean.
        let clean = compare(&base, &cur, 2.0);
        assert!(clean.failures.is_empty(), "{:?}", clean.failures);
        // Slower but within tolerance: advisory only when beyond it.
        cur.cells[0].best_ns = base.cells[0].best_ns.saturating_mul(10).max(10);
        let slow = compare(&base, &cur, 2.0);
        assert!(slow.failures.is_empty());
        assert_eq!(slow.advisories.len(), 1);
        // An II change is a hard regression.
        cur.cells[0].ii += 1;
        let drift = compare(&base, &cur, 2.0);
        assert_eq!(drift.failures.len(), 1);
        assert!(drift.failures[0].contains("II"), "{:?}", drift.failures);
        // Lost coverage is a hard regression.
        cur.cells.pop();
        let lost = compare(&base, &cur, 2.0);
        assert!(lost.failures.iter().any(|f| f.contains("missing")));
        assert!(lost.render().contains("REGRESSION"));
    }

    #[test]
    fn malformed_documents_report_the_line() {
        assert_eq!(parse_bench_json(""), Err(BenchParseError::Header));
        assert_eq!(parse_bench_json("{\"x\":1}"), Err(BenchParseError::Header));
        let bad = "{\"bench\":{\"label\":\"l\",\"reps\":1},\"cells\":[\n{\"kernel\":\"K\"}\n]}";
        assert_eq!(
            parse_bench_json(bad),
            Err(BenchParseError::Cell { line: 2 })
        );
    }
}
