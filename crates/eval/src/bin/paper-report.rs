//! Regenerates every table and figure of the paper in one run.
//!
//! Usage: `cargo run --release -p csched-eval --bin paper-report
//! [--no-sim] [--csv]` (`--csv` appends machine-readable blocks for
//! plotting).

use csched_core::SchedulerConfig;
use csched_eval::{costs, grid, report};

fn main() {
    let simulate = !std::env::args().any(|a| a == "--no-sim");
    let workloads = csched_kernels::all();
    println!("{}", report::table1(&workloads));

    let rows = costs::figures_25_27();
    println!("{}", report::figures_25_27(&rows));

    let archs = csched_machine::imagine::all_variants();
    let start = std::time::Instant::now();
    let grid = grid::run_grid(&workloads, &archs, &SchedulerConfig::default(), simulate)
        .unwrap_or_else(|e| panic!("evaluation failed: {e}"));
    eprintln!("(grid scheduled in {:.1?})", start.elapsed());

    println!("{}", report::figure28(&grid));
    println!("{}", report::figure29(&grid));
    println!("{}", report::headline(&costs::headline(), Some(&grid)));
    println!("{}", report::scaling(&costs::scaling(&[1, 2, 4])));

    if std::env::args().any(|a| a == "--csv") {
        println!("--- grid.csv ---");
        print!("{}", report::grid_csv(&grid));
        println!("--- cost.csv ---");
        print!("{}", report::cost_csv(&rows));
    }
}
