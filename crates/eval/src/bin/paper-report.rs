//! Regenerates every table and figure of the paper in one run.
//!
//! Usage: `cargo run --release -p csched-eval --bin paper-report
//! [--no-sim] [--csv] [--campaign] [--journal <path>] [--resume <path>]
//! [--step-limit <attempts>]` (`--csv` appends machine-readable blocks
//! for plotting).
//!
//! `--campaign` (implied by `--journal`/`--resume`) switches the grid to
//! crash-consistent campaign mode: every cell runs under a hard
//! placement-attempt budget with per-cell isolation, completed cells are
//! checkpointed to `--journal`, and `--resume` replays a previous journal
//! so an interrupted evaluation picks up where it stopped and produces
//! the identical report. Campaign mode skips simulation (figures need
//! only the journaled IIs) and exits 1 if any cell Failed or TimedOut.

use csched_core::SchedulerConfig;
use csched_eval::campaign::{self, CellStatus, Journal};
use csched_eval::{costs, grid, report};
use csched_ir::Kernel;
use std::collections::HashMap;
use std::path::PathBuf;

fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let simulate = !std::env::args().any(|a| a == "--no-sim");
    let journal_path = flag_value("--journal").map(PathBuf::from);
    let resume_path = flag_value("--resume").map(PathBuf::from);
    let campaign_mode = std::env::args().any(|a| a == "--campaign")
        || journal_path.is_some()
        || resume_path.is_some();
    let step_limit: u64 = flag_value("--step-limit")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--step-limit: not a number: {v}");
                std::process::exit(2);
            })
        })
        .unwrap_or(1_000_000);

    let workloads = csched_kernels::all();
    println!("{}", report::table1(&workloads));

    let rows = costs::figures_25_27().unwrap_or_else(|e| {
        eprintln!("cost model: {e}");
        std::process::exit(1);
    });
    let headline = costs::headline().unwrap_or_else(|e| {
        eprintln!("cost model: {e}");
        std::process::exit(1);
    });
    println!("{}", report::figures_25_27(&rows));

    let archs = csched_machine::imagine::all_variants();
    let config = SchedulerConfig::default();
    let start = std::time::Instant::now();

    let (grid, bad_cells) = if campaign_mode {
        let kernels: Vec<(&str, &Kernel)> = workloads
            .iter()
            .map(|w| (w.kernel.name(), &w.kernel))
            .collect();
        let resume = match &resume_path {
            Some(p) => Journal::load(p).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
            None => HashMap::new(),
        };
        let mut journal = journal_path.as_deref().map(|p| {
            Journal::open(p).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        });
        let result = campaign::run_campaign(
            &kernels,
            &archs,
            &config,
            step_limit,
            journal.as_mut(),
            &resume,
        )
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        eprintln!(
            "(campaign: {} cells, {} resumed, scheduled in {:.1?})",
            result.records.len(),
            result.resumed,
            start.elapsed()
        );
        let arch_names: Vec<String> = archs.iter().map(|a| a.name().to_string()).collect();
        let grid = campaign::grid_from_records(&result.records, &arch_names);
        let bad: Vec<String> = result
            .records
            .iter()
            .filter(|r| matches!(r.status, CellStatus::Failed | CellStatus::TimedOut))
            .map(|r| {
                format!(
                    "{} on {}: {}: {}",
                    r.kernel,
                    r.arch,
                    r.status.name(),
                    r.detail
                )
            })
            .collect();
        (grid, bad)
    } else {
        let grid = grid::run_grid(&workloads, &archs, &config, simulate).unwrap_or_else(|e| {
            eprintln!("evaluation failed: {e}");
            std::process::exit(1);
        });
        eprintln!("(grid scheduled in {:.1?})", start.elapsed());
        (grid, Vec::new())
    };

    if !grid.rows.is_empty() {
        println!("{}", report::figure28(&grid));
        println!("{}", report::figure29(&grid));
        println!("{}", report::headline(&headline, Some(&grid)));
    } else {
        println!("{}", report::headline(&headline, None));
    }
    println!("{}", report::scaling(&costs::scaling(&[1, 2, 4])));

    if std::env::args().any(|a| a == "--csv") {
        println!("--- grid.csv ---");
        print!("{}", report::grid_csv(&grid));
        println!("--- cost.csv ---");
        print!("{}", report::cost_csv(&rows));
    }

    if !bad_cells.is_empty() {
        for line in &bad_cells {
            eprintln!("bad cell: {line}");
        }
        std::process::exit(1);
    }
}
