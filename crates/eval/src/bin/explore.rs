//! Design-space exploration CLI: search architectures around the
//! paper's four machines and print the Pareto frontier.
//!
//! Usage: `cargo run --release -p csched-eval --bin explore --
//! [--candidates N] [--seed N] [--rounds N] [--step-limit N] [--jobs N]
//! [--kernels Merge,Sort] [--no-anchors] [--json]
//! [--journal <path>] [--resume <path>]`
//!
//! Candidates are drawn from the default
//! [`csched_machine::gen::DesignSpace`] (enumerated when it fits inside
//! `--candidates`, sampled from `--seed` otherwise), the full Table 1
//! kernel suite is scheduled on each one under a shared placement-attempt
//! budget, and the four-objective Pareto frontier (harmonic-mean II,
//! register-file area, power, delay) is printed as a text table — or as
//! the full deterministic JSON report with `--json`, which is
//! byte-identical for every `--jobs` value and across `--resume`.
//!
//! `--journal` checkpoints completed cells; `--resume` replays a journal
//! so a killed sweep only recomputes unfinished candidates. Exit codes:
//! 0 on success, 2 on usage/journal errors.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use csched_eval::campaign::Journal;
use csched_eval::explore::{explore, ExploreConfig};
use csched_ir::Kernel;
use std::collections::HashMap;
use std::path::PathBuf;

const USAGE: &str = "usage: explore [--candidates N] [--seed N] [--rounds N] \
[--step-limit N] [--jobs N] [--kernels A,B,...] [--no-anchors] [--json] \
[--journal PATH] [--resume PATH]";

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: not a number: {v}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }

    let config = ExploreConfig {
        candidates: parsed_flag(&args, "--candidates", 24),
        seed: parsed_flag(&args, "--seed", 0xC5C4ED),
        refine_rounds: parsed_flag(&args, "--rounds", 1),
        step_limit: parsed_flag(&args, "--step-limit", 1_000_000),
        anchors: !args.iter().any(|a| a == "--no-anchors"),
        ..ExploreConfig::default()
    };
    let jobs: usize = parsed_flag(&args, "--jobs", 1);

    let workloads: Vec<csched_kernels::Workload> = match flag_value(&args, "--kernels") {
        Some(list) => list
            .split(',')
            .map(|name| {
                csched_kernels::by_name(name).unwrap_or_else(|| {
                    eprintln!("unknown kernel {name:?}");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => csched_kernels::all(),
    };
    let kernels: Vec<(&str, &Kernel)> = workloads
        .iter()
        .map(|w| (w.kernel.name(), &w.kernel))
        .collect();

    let resume = match flag_value(&args, "--resume").map(PathBuf::from) {
        Some(p) => Journal::load(&p).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => HashMap::new(),
    };
    let mut journal = flag_value(&args, "--journal").map(|p| {
        Journal::open(&PathBuf::from(&p)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    });

    let start = std::time::Instant::now();
    let report = explore(&config, &kernels, jobs, journal.as_mut(), &resume).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    // Timing and resume statistics go to stderr only: stdout must be a
    // pure function of the search, identical across --jobs and --resume.
    eprintln!(
        "(explored {} candidates, {} resumed, {} on frontier, jobs={jobs}, {:.1?})",
        report.candidates.len(),
        report.resumed,
        report.frontier.len(),
        start.elapsed()
    );

    if args.iter().any(|a| a == "--json") {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_frontier());
    }
}
