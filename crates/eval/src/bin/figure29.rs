//! Regenerates Figure 29 (overall speedup vs register file architecture).
//!
//! Usage: `cargo run --release -p csched-eval --bin figure29 [--no-sim]`

use csched_core::SchedulerConfig;
use csched_eval::{grid, report};

fn main() {
    let simulate = !std::env::args().any(|a| a == "--no-sim");
    let grid = grid::run_grid(
        &csched_kernels::all(),
        &csched_machine::imagine::all_variants(),
        &SchedulerConfig::default(),
        simulate,
    )
    .unwrap_or_else(|e| panic!("evaluation failed: {e}"));
    println!("{}", report::figure29(&grid));
}
