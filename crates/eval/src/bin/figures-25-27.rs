//! Regenerates the Figures 25–27 register-file cost bars and the §1/§8
//! headline ratios.
//!
//! Usage: `cargo run --release -p csched-eval --bin figures-25-27`

use csched_eval::{costs, report};

fn main() {
    let rows = costs::figures_25_27().unwrap_or_else(|e| {
        eprintln!("cost model: {e}");
        std::process::exit(1);
    });
    let headline = costs::headline().unwrap_or_else(|e| {
        eprintln!("cost model: {e}");
        std::process::exit(1);
    });
    println!("{}", report::figures_25_27(&rows));
    println!("{}", report::headline(&headline, None));
}
