//! Regenerates the Figures 25–27 register-file cost bars and the §1/§8
//! headline ratios.
//!
//! Usage: `cargo run --release -p csched-eval --bin figures-25-27`

use csched_eval::{costs, report};

fn main() {
    println!("{}", report::figures_25_27(&costs::figures_25_27()));
    println!("{}", report::headline(&costs::headline(), None));
}
