//! Regenerates the §8 scaling projection (distributed vs clustered cost at
//! 12..96 arithmetic units).
//!
//! Usage: `cargo run --release -p csched-eval --bin scaling`

fn main() {
    println!(
        "{}",
        csched_eval::report::scaling(&csched_eval::costs::scaling(&[1, 2, 4, 8]))
    );
}
