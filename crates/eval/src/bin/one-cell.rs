//! Schedules one Table 1 kernel on one Imagine organisation and prints
//! the II, copy count and scheduler statistics — the unit of the
//! Figure 28 grid, for debugging and exploration.
//!
//! Usage:
//! `cargo run --release -p csched-eval --bin one-cell -- <kernel>
//! [central|clustered2|clustered4|distributed] [--sim] [--copies]
//! [--heatmap] [--metrics-json] [--explain] [--explain-json]
//! [--timeline <path>] [--gantt] [--help]`
//!
//! `--sim` executes the schedule against the scalar reference and prints
//! per-unit utilisation; `--copies` lists every communication that needed
//! a copy operation; `--certify` runs the exact oracle after the
//! heuristic and grades the II (`(optimal)`, `(exact=N, gap=G)`, or
//! `(exact search exhausted ...)`) — exiting nonzero if the oracle and
//! the validated heuristic schedule disagree; `--heatmap` renders the
//! per-resource occupancy heatmap; `--metrics-json` prints the cell's
//! schedule metrics as JSON;
//! `--explain` / `--explain-json` attribute the achieved II to its
//! binding constraint (recurrence cycle, saturating unit, or transport
//! resource) with counterfactual bounds; `--timeline <path>` simulates
//! the schedule and writes a Chrome trace-event JSON cycle timeline
//! (open in Perfetto or `chrome://tracing`); `--gantt` simulates and
//! renders the timeline as a terminal Gantt chart (iteration digits on
//! FU rows, `=` on bus rows).

use csched_core::{explain, schedule_kernel, validate, ScheduleMetrics, SchedulerConfig};
use csched_sim::Timeline;

const HELP: &str = "usage: one-cell <kernel> [arch] [flags]
  kernel   a Table 1 kernel name (e.g. FFT, DCT, Merge; case-insensitive)
  arch     central | clustered2 | clustered4 | distributed (default)
flags:
  --sim             execute the schedule and print utilisation + traffic
  --copies          list every communication that needed a copy
  --certify         run the exact oracle and grade the heuristic II;
                    exits 1 if the oracle disagrees with the validator
  --heatmap         render the per-resource occupancy heatmap
  --metrics-json    print the schedule metrics as JSON
  --explain         attribute the II to its binding constraint (text)
  --explain-json    same attribution as JSON
  --timeline <path> simulate and write a Chrome trace-event JSON timeline
                    (open in Perfetto or chrome://tracing)
  --gantt           simulate and render a terminal Gantt chart
  --help            this text";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") || args.is_empty() {
        println!("{HELP}");
        return;
    }
    let kernel_name = args.first().expect("kernel name");
    let arch_name = args.get(1).map(String::as_str).unwrap_or("distributed");
    let w = csched_kernels::by_name(kernel_name).expect("unknown kernel");
    let arch = match arch_name {
        "central" => csched_machine::imagine::central(),
        "clustered2" => csched_machine::imagine::clustered(2),
        "clustered4" => csched_machine::imagine::clustered(4),
        "distributed" => csched_machine::imagine::distributed(),
        other => panic!("unknown arch {other}"),
    };
    let t = std::time::Instant::now();
    let s = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default()).expect("schedules");
    println!(
        "{} on {}: II={} copies={} attempts={} rejections={} ii_tried={} in {:.2?}",
        w.kernel.name(),
        arch.name(),
        s.ii().unwrap(),
        s.num_copies(),
        s.stats().attempts,
        s.stats().rejections,
        s.stats().ii_tried,
        t.elapsed()
    );
    validate::validate(&arch, &w.kernel, &s).expect("valid");
    if args.iter().any(|a| a == "--certify") {
        use csched_core::exact::{certify_min_ii, ExactConfig, ExactVerdict};
        use csched_core::StepBudget;
        let heuristic_ii = s.ii().unwrap_or(0);
        let budget = StepBudget::new(2_000_000);
        let report = certify_min_ii(&arch, &w.kernel, &ExactConfig::default(), &budget)
            .expect("oracle runs");
        match report.verdict {
            ExactVerdict::Certified { ii } if ii == heuristic_ii => {
                println!("  II={heuristic_ii} (optimal)");
            }
            ExactVerdict::Certified { ii } if ii < heuristic_ii => {
                println!(
                    "  II={heuristic_ii} (exact={ii}, gap={})",
                    heuristic_ii - ii
                );
            }
            ExactVerdict::Certified { ii } => {
                // The validator accepted a schedule below the "certified
                // minimum": one of the two checkers is wrong.
                eprintln!(
                    "  SOUNDNESS DISAGREEMENT: oracle certified II={ii} above the \
                     validated heuristic II={heuristic_ii}"
                );
                std::process::exit(1);
            }
            ExactVerdict::GapUnknown { spent, limit } => {
                println!(
                    "  II={heuristic_ii} (exact search exhausted its budget: \
                     {spent}/{limit} steps; gap unknown)"
                );
            }
            ExactVerdict::Infeasible { max_ii } if heuristic_ii <= max_ii => {
                eprintln!(
                    "  SOUNDNESS DISAGREEMENT: oracle proved II<={max_ii} infeasible, \
                     yet the validator accepted II={heuristic_ii}"
                );
                std::process::exit(1);
            }
            ExactVerdict::Infeasible { max_ii } => {
                println!("  II={heuristic_ii} (exact search capped at II={max_ii}; gap unknown)");
            }
        }
    }
    if args.iter().any(|a| a == "--heatmap") {
        let m = ScheduleMetrics::compute(&arch, &w.kernel, &s);
        println!("{}", m.render_heatmap());
    }
    if args.iter().any(|a| a == "--metrics-json") {
        let m = ScheduleMetrics::compute(&arch, &w.kernel, &s);
        println!("{}", m.to_json());
    }
    if args.iter().any(|a| a == "--explain") {
        print!("{}", explain::explain(&arch, &w.kernel, &s).render_text());
    }
    if args.iter().any(|a| a == "--explain-json") {
        println!("{}", explain::explain(&arch, &w.kernel, &s).to_json());
    }
    if args.iter().any(|a| a == "--copies") {
        let u = s.universe();
        for cid in u.comm_ids() {
            if let csched_core::CommDisposition::Via(copy) = s.disposition(cid) {
                let c = u.comm(cid);
                let p = s.placement(c.producer);
                let q = s.placement(c.consumer);
                eprintln!(
                    "copy {:?} for {:?}({:?}@{}) -> {:?}({:?}@{}) d={}",
                    copy,
                    u.op(c.producer).opcode,
                    p.fu,
                    p.cycle,
                    u.op(c.consumer).opcode,
                    q.fu,
                    q.cycle,
                    c.distance,
                );
            }
        }
    }
    let timeline_path = args
        .iter()
        .position(|a| a == "--timeline")
        .map(|i| args.get(i + 1).expect("--timeline needs a path").clone());
    let want_gantt = args.iter().any(|a| a == "--gantt");
    if timeline_path.is_some() || want_gantt {
        let mut mem = w.memory();
        let mut tl = Timeline::new();
        let stats = csched_sim::execute_timed(&w.kernel, &s, &mut mem, w.trip, Some(&mut tl))
            .expect("simulates");
        if let Some(path) = timeline_path {
            std::fs::write(&path, tl.chrome_trace(&arch, &s)).expect("writes timeline");
            println!(
                "  timeline: {} events over {} cycles -> {path} (open in Perfetto)",
                tl.events().len(),
                stats.cycles
            );
        }
        if want_gantt {
            print!("{}", tl.render_gantt(&arch, 120));
        }
    }
    if args.iter().any(|a| a == "--sim") {
        let mut mem = w.memory();
        let stats = csched_sim::execute(&w.kernel, &s, &mut mem, w.trip).expect("simulates");
        w.verify(&mem).expect("matches reference");
        println!(
            "  simulated OK: {} cycles, {} ops ({} copies), {} bus transfers",
            stats.cycles, stats.ops_executed, stats.copies_executed, stats.bus_transfers
        );
        let mut util = stats.utilization(&arch);
        util.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (name, u) in util.iter().take(6) {
            println!("    {name:<6} {:>5.1}%", u * 100.0);
        }
        println!("  register-file traffic (writes/reads):");
        for (name, writes, reads) in stats.rf_traffic(&arch) {
            if writes + reads > 0 {
                println!("    {name:<6} {writes:>6} / {reads}");
            }
        }
        println!("  bus traffic:");
        for (name, transfers) in stats.bus_traffic(&arch) {
            if transfers > 0 {
                println!("    {name:<6} {transfers:>6}");
            }
        }
    }
}
