//! Regenerates Table 1 (the kernel inventory) and self-checks every kernel
//! against its scalar reference implementation.
//!
//! Usage: `cargo run --release -p csched-eval --bin table1 --
//! [--metrics-json | --campaign-json] [--journal <path>] [--resume <path>]
//! [--step-limit <attempts>] [--jobs <threads>] [--gap]
//! [--gap-steps <attempts>] [extra-kernel.k ...]`
//!
//! With `--metrics-json`, schedules every Table 1 kernel on all four
//! Imagine register-file organisations and prints the full
//! [`csched_core::ScheduleMetrics`] grid as one JSON document instead of
//! the plain-text table.
//!
//! With `--campaign-json`, runs the same kernel × architecture grid as a
//! crash-consistent *campaign*: every cell is scheduled under a hard
//! placement-attempt budget (`--step-limit`, default 1,000,000), one bad
//! cell never aborts the rest, each completed cell is journaled to
//! `--journal` as soon as it finishes, and `--resume` replays a previous
//! journal so only missing cells are recomputed. The report is a pure
//! function of the cell records, so a resumed campaign prints the same
//! bytes as an uninterrupted one. `--jobs N` spreads the campaign's
//! cells over N worker threads; the report stays byte-identical because
//! results merge in grid order and the journal is written only from the
//! main thread.
//!
//! With `--gap`, appends the heuristic-vs-exact optimality-gap table:
//! every paper-grid cell is certified by the exact oracle under a tight
//! per-cell step budget (`--gap-steps`, default 300,000), printing the
//! heuristic II, the certified exact II (`?` when the budget ran out
//! first), and the gap. Exits 1 if the oracle and the validator disagree
//! on any cell.
//!
//! Extra positional arguments name kernel text files (the
//! `csched_ir::text` language). A file that fails to parse no longer
//! aborts the run: its structured parse error goes to stderr, the
//! remaining kernels are still processed, and the process exits with
//! status 2 (parse failures present) or 1 (any cell Failed or TimedOut);
//! 0 means every cell was Ok.

use csched_core::{schedule_kernel, ScheduleMetrics, SchedulerConfig};
use csched_eval::campaign::{self, CellRecord, CellStatus, Journal};
use csched_eval::report;
use csched_ir::Kernel;
use std::collections::HashMap;
use std::path::PathBuf;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_json = args.iter().any(|a| a == "--metrics-json");
    let campaign_json = args.iter().any(|a| a == "--campaign-json");
    let journal_path = flag_value(&args, "--journal").map(PathBuf::from);
    let resume_path = flag_value(&args, "--resume").map(PathBuf::from);
    let step_limit: u64 = flag_value(&args, "--step-limit")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--step-limit: not a number: {v}");
                std::process::exit(2);
            })
        })
        .unwrap_or(1_000_000);
    let jobs: usize = flag_value(&args, "--jobs")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--jobs: not a number: {v}");
                std::process::exit(2);
            })
        })
        .unwrap_or(1);
    let want_gap = args.iter().any(|a| a == "--gap");
    let gap_steps: u64 = flag_value(&args, "--gap-steps")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--gap-steps: not a number: {v}");
                std::process::exit(2);
            })
        })
        .unwrap_or(300_000);

    // Positional args are kernel files; skip flag values.
    let mut files: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for (i, a) in args.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--journal"
            || a == "--resume"
            || a == "--step-limit"
            || a == "--jobs"
            || a == "--gap-steps"
        {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            files.push(&args[i]);
        }
    }

    // Parse extra kernels, collecting failures instead of aborting: the
    // rest of the evaluation still runs, and failed files surface as
    // Skipped cells (campaign mode) plus a nonzero exit.
    let mut extra_kernels: Vec<Kernel> = Vec::new();
    let mut parse_failures: Vec<CellRecord> = Vec::new();
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: {e}");
                parse_failures.push(CellRecord::skipped(file, e.to_string()));
                continue;
            }
        };
        match csched_ir::text::parse(&text) {
            Ok(kernel) => extra_kernels.push(kernel),
            Err(err) => {
                eprintln!("{}", report::parse_error_json(file, &err));
                parse_failures.push(CellRecord::skipped(file, err.to_string()));
            }
        }
    }

    let workloads = csched_kernels::all();

    if campaign_json {
        let archs = csched_machine::imagine::all_variants();
        let config = SchedulerConfig::default();
        let mut kernels: Vec<(&str, &Kernel)> = workloads
            .iter()
            .map(|w| (w.kernel.name(), &w.kernel))
            .collect();
        for k in &extra_kernels {
            kernels.push((k.name(), k));
        }
        let resume = match &resume_path {
            Some(p) => Journal::load(p).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
            None => HashMap::new(),
        };
        let mut journal = journal_path.as_deref().map(|p| {
            Journal::open(p).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        });
        let result = campaign::run_campaign_jobs(
            &kernels,
            &archs,
            &config,
            step_limit,
            journal.as_mut(),
            &resume,
            jobs,
        )
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        let mut records = result.records;
        records.extend(parse_failures.iter().cloned());
        println!("{}", campaign::campaign_json(&records));
        let bad = records
            .iter()
            .filter(|r| matches!(r.status, CellStatus::Failed | CellStatus::TimedOut))
            .count();
        if !parse_failures.is_empty() {
            std::process::exit(2);
        }
        if bad > 0 {
            std::process::exit(1);
        }
        return;
    }

    if metrics_json {
        let archs = csched_machine::imagine::all_variants();
        let grid = csched_eval::run_grid(&workloads, &archs, &SchedulerConfig::default(), false)
            .unwrap_or_else(|e| {
                eprintln!("grid failed: {e}");
                std::process::exit(1);
            });
        let mut extra = Vec::new();
        for kernel in &extra_kernels {
            for arch in &archs {
                let schedule = schedule_kernel(arch, kernel, SchedulerConfig::default())
                    .unwrap_or_else(|e| {
                        eprintln!("{} on {}: {e}", kernel.name(), arch.name());
                        std::process::exit(1);
                    });
                extra.push(ScheduleMetrics::compute(arch, kernel, &schedule));
            }
        }
        println!("{}", report::metrics_json(&grid, &extra));
        if !parse_failures.is_empty() {
            std::process::exit(2);
        }
        return;
    }

    println!("{}", report::table1(&workloads));
    for kernel in &extra_kernels {
        println!(
            "parsed {}: {} loop ops ({} blocks)",
            kernel.name(),
            kernel.loop_ops().len(),
            kernel.blocks().len()
        );
    }
    let mut self_check_failed = false;
    for w in &workloads {
        if let Err(e) = w.self_check() {
            eprintln!("self-check failed: {e}");
            self_check_failed = true;
        }
    }
    if !self_check_failed {
        println!(
            "all {} kernels match their scalar references",
            workloads.len()
        );
    }
    if want_gap {
        let cfg = csched_eval::GapConfig {
            exact_step_limit: gap_steps,
            ..csched_eval::GapConfig::default()
        };
        let report = csched_eval::run_gap(&cfg, None, false).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        println!("Optimality gap (exact oracle, {gap_steps} steps/cell):");
        print!("{}", csched_eval::gap_table(&report));
        if !report.disagreements().is_empty() {
            for r in report.disagreements() {
                eprintln!(
                    "SOUNDNESS DISAGREEMENT on {} x {}: {}",
                    r.kernel, r.arch, r.detail
                );
            }
            std::process::exit(1);
        }
    }
    if !parse_failures.is_empty() {
        std::process::exit(2);
    }
    if self_check_failed {
        std::process::exit(1);
    }
}
