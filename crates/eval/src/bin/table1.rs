//! Regenerates Table 1 (the kernel inventory) and self-checks every kernel
//! against its scalar reference implementation.
//!
//! Usage: `cargo run --release -p csched-eval --bin table1`

fn main() {
    let workloads = csched_kernels::all();
    println!("{}", csched_eval::report::table1(&workloads));
    for w in &workloads {
        w.self_check()
            .unwrap_or_else(|e| panic!("self-check failed: {e}"));
    }
    println!(
        "all {} kernels match their scalar references",
        workloads.len()
    );
}
