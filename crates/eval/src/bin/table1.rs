//! Regenerates Table 1 (the kernel inventory) and self-checks every kernel
//! against its scalar reference implementation.
//!
//! Usage: `cargo run --release -p csched-eval --bin table1 --
//! [--metrics-json] [extra-kernel.k ...]`
//!
//! With `--metrics-json`, schedules every Table 1 kernel on all four
//! Imagine register-file organisations and prints the full
//! [`csched_core::ScheduleMetrics`] grid as one JSON document instead of
//! the plain-text table. Extra positional arguments name kernel text
//! files (the `csched_ir::text` language); they are parsed and, under
//! `--metrics-json`, scheduled and appended to the same document. Parse
//! failures are reported as structured JSON on stderr (line, column and
//! snippet as separate fields) and exit with status 2.

use csched_core::{schedule_kernel, ScheduleMetrics, SchedulerConfig};
use csched_eval::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_json = args.iter().any(|a| a == "--metrics-json");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let mut extra_kernels = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("{file}: {e}");
            std::process::exit(2);
        });
        match csched_ir::text::parse(&text) {
            Ok(kernel) => extra_kernels.push(kernel),
            Err(err) => {
                eprintln!("{}", report::parse_error_json(file, &err));
                std::process::exit(2);
            }
        }
    }

    let workloads = csched_kernels::all();
    if metrics_json {
        let archs = csched_machine::imagine::all_variants();
        let grid = csched_eval::run_grid(&workloads, &archs, &SchedulerConfig::default(), false)
            .unwrap_or_else(|e| {
                eprintln!("grid failed: {e}");
                std::process::exit(1);
            });
        let mut extra = Vec::new();
        for kernel in &extra_kernels {
            for arch in &archs {
                let schedule = schedule_kernel(arch, kernel, SchedulerConfig::default())
                    .unwrap_or_else(|e| {
                        eprintln!("{} on {}: {e}", kernel.name(), arch.name());
                        std::process::exit(1);
                    });
                extra.push(ScheduleMetrics::compute(arch, kernel, &schedule));
            }
        }
        println!("{}", report::metrics_json(&grid, &extra));
        return;
    }

    println!("{}", report::table1(&workloads));
    for kernel in &extra_kernels {
        println!(
            "parsed {}: {} loop ops ({} blocks)",
            kernel.name(),
            kernel.loop_ops().len(),
            kernel.blocks().len()
        );
    }
    for w in &workloads {
        w.self_check()
            .unwrap_or_else(|e| panic!("self-check failed: {e}"));
    }
    println!(
        "all {} kernels match their scalar references",
        workloads.len()
    );
}
