//! `dash` — a live terminal dashboard for the scheduler service.
//!
//! Polls a running `serve` instance's `STATS` and `METRICS` verbs and
//! renders, in place:
//!
//! - request totals and per-second rates by outcome
//!   (`ok|degraded|overload|deadline|sched|malformed|internal`);
//! - the hostile-environment counters from PR 8 (shed connections,
//!   degraded answers, quarantined cache entries, the ENOSPC
//!   write-degraded latch) so overload and disk trouble are visible at
//!   a glance instead of inferred;
//! - latency histogram sparklines per outcome, drawn from the
//!   deterministic log-bucketed histograms in
//!   [`csched_eval::telemetry`];
//! - the slowest recent requests from the span ring, each with its
//!   stage split (sched vs everything else), attempts, achieved II,
//!   and the binding-constraint attribution the server computed via
//!   [`mod@csched_core::explain`] — the paper's §6 "why is the II what it
//!   is" answer, per request, live.
//!
//! `--once` prints a single frame and exits (the CI smoke mode);
//! otherwise the dashboard refreshes every `--interval-ms` until
//! interrupted or `--frames` runs out.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use std::time::{Duration, Instant};

use csched_eval::serve::{client_metrics, client_stats};
use csched_eval::telemetry::{scan_u64, MetricsSnapshot, SpanSummary};

const HELP: &str = "usage: dash --addr <host:port> [flags]
  --interval-ms N   poll period (default 1000)
  --frames N        stop after N frames (default: run until killed)
  --once            print one frame without clearing and exit
  --slow N          rows in the slow-request table (default 5)
  --help            this text";

const TIMEOUT: Duration = Duration::from_secs(10);

/// The outcome labels, in display order (matches telemetry's rendering
/// order, so rows line up with the METRICS JSON).
const OUTCOMES: [&str; 7] = [
    "ok",
    "degraded",
    "overload",
    "deadline",
    "sched",
    "malformed",
    "internal",
];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn num_flag(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad {flag} value {v}")),
    }
}

struct Plan {
    addr: String,
    interval: Duration,
    frames: Option<u64>,
    once: bool,
    slow_rows: usize,
}

fn parse_plan(args: &[String]) -> Result<Plan, String> {
    let addr = flag_value(args, "--addr").ok_or("need --addr <host:port>")?;
    Ok(Plan {
        addr,
        interval: Duration::from_millis(num_flag(args, "--interval-ms")?.unwrap_or(1000).max(50)),
        frames: num_flag(args, "--frames")?,
        once: args.iter().any(|a| a == "--once"),
        slow_rows: num_flag(args, "--slow")?.unwrap_or(5) as usize,
    })
}

/// One poll's worth of parsed server state.
struct Frame {
    uptime_ms: u64,
    requests_total: u64,
    shed: u64,
    degraded: u64,
    quarantined: u64,
    write_degraded: u64,
    hits: u64,
    misses: u64,
    metrics: MetricsSnapshot,
}

fn poll(addr: &str) -> Result<Frame, String> {
    let stats = client_stats(addr, TIMEOUT).map_err(|e| format!("STATS failed: {e}"))?;
    let metrics_text = client_metrics(addr, TIMEOUT).map_err(|e| format!("METRICS failed: {e}"))?;
    let json_line = metrics_text.lines().next().unwrap_or("");
    let metrics = MetricsSnapshot::parse(json_line)
        .map_err(|e| format!("unparseable METRICS line ({e}): {json_line}"))?;
    Ok(Frame {
        uptime_ms: scan_u64(&stats, "\"uptime_ms\":").unwrap_or(0),
        requests_total: scan_u64(&stats, "\"requests\":").unwrap_or(0),
        shed: scan_u64(&stats, "\"shed\":").unwrap_or(0),
        degraded: scan_u64(&stats, "\"degraded\":").unwrap_or(0),
        quarantined: scan_u64(&stats, "\"quarantined\":").unwrap_or(0),
        write_degraded: scan_u64(&stats, "\"write_degraded\":").unwrap_or(0),
        hits: scan_u64(&stats, "\"hits\":").unwrap_or(0),
        misses: scan_u64(&stats, "\"misses\":").unwrap_or(0),
        metrics,
    })
}

/// Renders bucket counts as a fixed-width sparkline: each cell is one
/// occupied-bucket's count scaled against the busiest bucket.
fn sparkline(buckets: &[(u64, u64)], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if buckets.is_empty() {
        return "-".repeat(width);
    }
    // Resample the occupied buckets onto `width` cells.
    let max = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    let mut out = String::with_capacity(width * 3);
    for cell in 0..width {
        let lo = cell * buckets.len() / width;
        let hi = (((cell + 1) * buckets.len()).div_ceil(width)).min(buckets.len());
        let count: u64 = buckets[lo..hi.max(lo + 1).min(buckets.len())]
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0);
        if count == 0 {
            out.push(' ');
        } else {
            let idx = ((count * 7).div_ceil(max) as usize).min(7);
            out.push(BARS[idx]);
        }
    }
    out
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn outcome_count(metrics: &MetricsSnapshot, label: &str) -> u64 {
    metrics
        .requests
        .iter()
        .find(|(l, _)| l == label)
        .map_or(0, |&(_, n)| n)
}

fn render(frame: &Frame, prev: Option<&(Frame, Instant)>, slow_rows: usize) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "csched dash · uptime {}s · {} conns · cache {}h/{}m · shed {} · degraded {} · \
         quarantined {}{}\n\n",
        frame.uptime_ms / 1000,
        frame.requests_total,
        frame.hits,
        frame.misses,
        frame.shed,
        frame.degraded,
        frame.quarantined,
        if frame.write_degraded > 0 {
            " · WRITE-DEGRADED (ENOSPC)"
        } else {
            ""
        },
    ));
    out.push_str("  outcome     total    rate/s   latency\n");
    for label in OUTCOMES {
        let total = outcome_count(&frame.metrics, label);
        let rate = match prev {
            Some((p, at)) => {
                let dt = at.elapsed().as_secs_f64().max(1e-9);
                (total.saturating_sub(outcome_count(&p.metrics, label))) as f64 / dt
            }
            None => 0.0,
        };
        let empty = Vec::new();
        let buckets = frame
            .metrics
            .latency
            .iter()
            .find(|(l, _)| l == label)
            .map_or(&empty, |(_, b)| b);
        if total == 0 && buckets.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "  {label:<10} {total:>7} {rate:>8.1}   {}\n",
            sparkline(buckets, 24)
        ));
    }
    let mut slow: Vec<&SpanSummary> = frame.metrics.spans.iter().collect();
    slow.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.id.cmp(&b.id)));
    slow.truncate(slow_rows);
    if !slow.is_empty() {
        out.push_str("\n  slowest recent requests\n");
        out.push_str(
            "  req     kernel           outcome    total     sched  attempts  ii  binding\n",
        );
        for s in slow {
            out.push_str(&format!(
                "  #{:<6} {:<16} {:<9} {:>7} {:>9} {:>9} {:>3}  {}\n",
                s.id,
                truncate(&s.kernel, 16),
                s.outcome,
                fmt_us(s.total_us),
                fmt_us(s.sched_us),
                s.attempts,
                s.ii,
                s.binding,
            ));
        }
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

fn run(plan: &Plan) -> Result<(), String> {
    let mut prev: Option<(Frame, Instant)> = None;
    let mut frames_done = 0u64;
    loop {
        let frame = poll(&plan.addr)?;
        let text = render(&frame, prev.as_ref(), plan.slow_rows);
        if plan.once {
            print!("{text}");
            return Ok(());
        }
        // Clear the screen and home the cursor; a fresh frame replaces
        // the old one in place.
        print!("\u{1b}[2J\u{1b}[H{text}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = Some((frame, Instant::now()));
        frames_done += 1;
        if plan.frames.is_some_and(|n| frames_done >= n) {
            return Ok(());
        }
        std::thread::sleep(plan.interval);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") || args.is_empty() {
        println!("{HELP}");
        return;
    }
    let plan = match parse_plan(&args) {
        Ok(plan) => plan,
        Err(message) => {
            eprintln!("dash: {message}\n{HELP}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run(&plan) {
        eprintln!("dash: {message}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_handles_empty_and_scales() {
        assert_eq!(sparkline(&[], 4), "----");
        let line = sparkline(&[(0, 1), (16, 8)], 2);
        assert_eq!(line.chars().count(), 2);
        assert!(line.ends_with('█'));
    }

    #[test]
    fn fmt_us_picks_units() {
        assert_eq!(fmt_us(900), "900us");
        assert_eq!(fmt_us(1_500), "1.5ms");
        assert_eq!(fmt_us(2_500_000), "2.50s");
    }

    #[test]
    fn truncate_is_char_safe() {
        assert_eq!(truncate("short", 16), "short");
        assert_eq!(truncate("0123456789abcdef0", 16), "0123456789abcde…");
    }
}
