//! `soak` — seeded chaos soak harness for the scheduler service.
//!
//! Spawns the real `serve` binary as a child process, puts a
//! deterministic fault-injecting proxy ([`csched_eval::chaosnet`]) in
//! front of it, and drives seeded mixed good/evil clients through the
//! proxy while periodically SIGKILLing and restarting the server.
//! At the end it asserts the service's robustness invariants:
//!
//! - the retrying clients reach **100% eventual success** while the
//!   no-retry control client demonstrably fails;
//! - `attempts <= step limit` on every single response;
//! - after the final SIGKILL + restart the cache reports
//!   **zero quarantined** and zero corrupt lines, and serves every key
//!   **byte-identically** to the first answer recorded for it;
//! - journal **compaction** actually ran (when the thresholds say it
//!   must);
//! - no worker is left hung — a full clean pass over every key
//!   completes after the storm.
//!
//! Exit codes: 0 all invariants held, 1 invariant violations (each
//! printed), 2 setup/usage error. The whole run — fault schedule,
//! retry jitter, client mix — derives from `--seed`, so any failure
//! reproduces by re-running with the same flags.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use csched_core::faultinject::ChaosRng;
use csched_eval::chaosnet::{ChaosNetConfig, ChaosProxy, FaultAction, FaultKind};
use csched_eval::serve::{
    client_request, client_request_retry, client_stats, response_complete, RetryConfig,
};

const HELP: &str = "usage: soak [flags]
  --seed N             master seed for faults, jitter, client mix (default 3405691582)
  --clients N          concurrent retrying clients (default 4)
  --rounds N           passes each client makes over the key set (default 3)
  --fault-permille N   fraction of proxied connections faulted (default 200)
  --kills N            mid-run SIGKILL+restart cycles (default 1)
  --step-limit N       per-request placement-attempt budget (default 200000)
  --retries N          retry budget per request (default 6)
  --backoff-ms N       base backoff, exponential with full jitter (default 50)
  --compact-bytes N    journal byte threshold for compaction (default 4194304)
  --compact-entries N  cache entry cap, evicts oldest beyond it (default 8)
  --read-phase-ms N    server budget to read one whole request (default 2000)
  --require-faults a,b fault kinds that must appear in the proxy log
                       (latency|disconnect|torn-write|slowloris|truncate)
  --cache PATH         cache journal path (default: temp file per run)
  --server-bin PATH    serve binary (default: sibling of this binary)
  --help               this text";

const TIMEOUT: Duration = Duration::from_secs(60);

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------

struct Plan {
    seed: u64,
    clients: u64,
    rounds: u64,
    fault_permille: u32,
    kills: u64,
    step_limit: u64,
    retries: u32,
    backoff_ms: u64,
    compact_bytes: u64,
    compact_entries: u64,
    read_phase_ms: u64,
    require_faults: Vec<FaultKind>,
    cache: PathBuf,
    server_bin: PathBuf,
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn num_flag(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad {flag} value {v}")),
    }
}

fn parse_plan(args: &[String]) -> Result<Plan, String> {
    let server_bin = match flag_value(args, "--server-bin") {
        Some(path) => PathBuf::from(path),
        None => std::env::current_exe()
            .ok()
            .and_then(|exe| Some(exe.parent()?.join("serve")))
            .ok_or("cannot locate the serve binary; pass --server-bin")?,
    };
    if !server_bin.exists() {
        return Err(format!(
            "serve binary not found at {} (pass --server-bin)",
            server_bin.display()
        ));
    }
    let cache = match flag_value(args, "--cache") {
        Some(path) => PathBuf::from(path),
        None => std::env::temp_dir().join(format!("csched-soak-{}.jsonl", std::process::id())),
    };
    let mut require_faults = Vec::new();
    if let Some(list) = flag_value(args, "--require-faults") {
        for name in list.split(',').filter(|s| !s.is_empty()) {
            let kind = FaultKind::from_name(name)
                .ok_or_else(|| format!("unknown fault kind {name} in --require-faults"))?;
            require_faults.push(kind);
        }
    }
    Ok(Plan {
        seed: num_flag(args, "--seed")?.unwrap_or(0xCAFE_BABE),
        clients: num_flag(args, "--clients")?.unwrap_or(4).max(1),
        rounds: num_flag(args, "--rounds")?.unwrap_or(3).max(1),
        fault_permille: num_flag(args, "--fault-permille")?.unwrap_or(200) as u32,
        kills: num_flag(args, "--kills")?.unwrap_or(1),
        step_limit: num_flag(args, "--step-limit")?.unwrap_or(200_000),
        retries: num_flag(args, "--retries")?.unwrap_or(6) as u32,
        backoff_ms: num_flag(args, "--backoff-ms")?.unwrap_or(50),
        compact_bytes: num_flag(args, "--compact-bytes")?.unwrap_or(1 << 22),
        compact_entries: num_flag(args, "--compact-entries")?.unwrap_or(8),
        read_phase_ms: num_flag(args, "--read-phase-ms")?.unwrap_or(2_000),
        require_faults,
        cache,
        server_bin,
    })
}

// ---------------------------------------------------------------------
// Child server management
// ---------------------------------------------------------------------

struct ChildServer {
    child: Child,
    addr: SocketAddr,
    /// The `cache: E entries, Q quarantined, C corrupt lines, …` load
    /// line the server printed on startup.
    cache_line: String,
    /// Kept open so the child's stdout pipe outlives the parse.
    _stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_server(plan: &Plan) -> Result<ChildServer, String> {
    let mut child = Command::new(&plan.server_bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--cache",
            &plan.cache.display().to_string(),
            "--jobs",
            "2",
            "--queue",
            "16",
            "--step-limit",
            &plan.step_limit.to_string(),
            "--compact-bytes",
            &plan.compact_bytes.to_string(),
            "--compact-entries",
            &plan.compact_entries.to_string(),
            "--read-phase-ms",
            &plan.read_phase_ms.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawning {}: {e}", plan.server_bin.display()))?;
    let stdout = child.stdout.take().ok_or("child stdout was not captured")?;
    let mut reader = BufReader::new(stdout);
    let mut cache_line = String::new();
    let addr = loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading server startup output: {e}"))?;
        if n == 0 {
            let _ = child.kill();
            return Err("server exited before printing its address".to_string());
        }
        if line.starts_with("cache: ") {
            cache_line = line.trim_end().to_string();
        }
        if let Some(rest) = line.trim_end().strip_prefix("listening on ") {
            break rest
                .parse()
                .map_err(|e| format!("bad server address {rest}: {e}"))?;
        }
    };
    Ok(ChildServer {
        child,
        addr,
        cache_line,
        _stdout: reader,
    })
}

/// SIGKILL the child — the crash under test, not a graceful stop.
fn kill_server(mut server: ChildServer) {
    let _ = server.child.kill();
    let _ = server.child.wait();
}

// ---------------------------------------------------------------------
// Request keys and JSON scraping
// ---------------------------------------------------------------------

struct RequestKey {
    label: String,
    kernel_text: String,
    arch_text: String,
}

fn request_keys() -> Result<Vec<RequestKey>, String> {
    let kernels = ["Merge", "FIR-int", "Sort", "DCT"];
    let archs: [(&str, csched_machine::Architecture); 3] = [
        ("central", csched_machine::imagine::central()),
        ("clustered4", csched_machine::imagine::clustered(4)),
        ("distributed", csched_machine::imagine::distributed()),
    ];
    let mut keys = Vec::new();
    for kernel in kernels {
        let w =
            csched_kernels::by_name(kernel).ok_or_else(|| format!("unknown kernel {kernel}"))?;
        let kernel_text = csched_ir::text::print(&w.kernel);
        for (arch_name, arch) in &archs {
            keys.push(RequestKey {
                label: format!("{kernel}/{arch_name}"),
                kernel_text: kernel_text.clone(),
                arch_text: csched_machine::text::print(arch),
            });
        }
    }
    Ok(keys)
}

/// Scrape `"field":N` out of a one-line JSON blob. The stats line is
/// generated by our own server, so a positional scan is sufficient.
fn json_u64(text: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = text.find(&needle)? + needle.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn ok_line(response: &str) -> Option<&str> {
    response.lines().find(|l| l.starts_with("OK "))
}

// ---------------------------------------------------------------------
// The soak itself
// ---------------------------------------------------------------------

struct Shared {
    proxy_addr: String,
    step_limit: u64,
    retry_base: RetryConfig,
    /// First OK line recorded per key label; later answers must match.
    first_answers: Mutex<HashMap<String, String>>,
    violations: Mutex<Vec<String>>,
    completed: AtomicU64,
    retried_total: AtomicU64,
    backoff_total_ms: AtomicU64,
}

impl Shared {
    fn violate(&self, message: String) {
        lock(&self.violations).push(message);
    }

    /// Record/verify an OK response for `label`; returns false when the
    /// response is not a complete success.
    fn book_response(&self, label: &str, response: &str) -> bool {
        if !response_complete(response) {
            return false;
        }
        let Some(ok) = ok_line(response) else {
            return false;
        };
        match json_like_attempts(ok) {
            Some(attempts) if attempts <= self.step_limit => {}
            Some(attempts) => {
                self.violate(format!(
                    "{label}: spent {attempts} attempts over the {} limit",
                    self.step_limit
                ));
            }
            None => self.violate(format!("{label}: OK line without attempts: {ok}")),
        }
        let mut first = lock(&self.first_answers);
        match first.get(label) {
            None => {
                first.insert(label.to_string(), ok.to_string());
            }
            Some(prev) if prev != ok => {
                self.violate(format!(
                    "{label}: answer changed mid-run: {prev:?} vs {ok:?}"
                ));
            }
            Some(_) => {}
        }
        true
    }
}

fn json_like_attempts(ok: &str) -> Option<u64> {
    let at = ok.find("attempts=")? + "attempts=".len();
    let digits: String = ok[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn good_client(shared: &Shared, keys: &[RequestKey], rounds: u64, client_index: u64) {
    let mut seeds = ChaosRng::substream(shared.retry_base.seed, 7_000 + client_index);
    for round in 0..rounds {
        for key in keys {
            let retry = RetryConfig {
                seed: seeds.next_u64(),
                ..shared.retry_base
            };
            let (outcome, report) = client_request_retry(
                &shared.proxy_addr,
                &key.kernel_text,
                &key.arch_text,
                None,
                None,
                TIMEOUT,
                &retry,
            );
            shared.retried_total.fetch_add(
                u64::from(report.attempts.saturating_sub(1)),
                Ordering::Relaxed,
            );
            shared
                .backoff_total_ms
                .fetch_add(report.total_backoff_ms, Ordering::Relaxed);
            let booked = match &outcome {
                Ok(response) => shared.book_response(&key.label, response),
                Err(_) => false,
            };
            if !booked {
                shared.violate(format!(
                    "client {client_index} round {round} {}: no eventual success after \
                     {} attempts ({:?} / retried {:?})",
                    key.label, report.attempts, outcome, report.retried
                ));
            }
            shared.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Evil clients: protocol abusers aimed through the proxy. None of
/// them should wedge a worker or corrupt anyone else's answer.
fn evil_client(proxy_addr: &str, seed: u64, iterations: u64) {
    let mut rng = ChaosRng::substream(seed, 13_000);
    for i in 0..iterations {
        match i % 3 {
            // Garbage bytes, then read whatever comes back.
            0 => {
                if let Ok(mut s) = TcpStream::connect(proxy_addr) {
                    let junk: Vec<u8> = (0..64).map(|_| (rng.next_u64() & 0xff) as u8).collect();
                    let _ = s.write_all(&junk);
                    let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
                    let mut sink = [0u8; 256];
                    let _ = std::io::Read::read(&mut s, &mut sink);
                }
            }
            // Manual slowloris: drip a real-looking header one byte at
            // a time, slower than the server should tolerate.
            1 => {
                if let Ok(mut s) = TcpStream::connect(proxy_addr) {
                    for byte in b"SCHED\nKERNEL 4096\n" {
                        if s.write_all(std::slice::from_ref(byte)).is_err() {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(40));
                    }
                }
            }
            // Half-open: partial request, then silence and close.
            _ => {
                if let Ok(mut s) = TcpStream::connect(proxy_addr) {
                    let _ = s.write_all(b"SCHED\nKERNEL 10\n");
                    std::thread::sleep(Duration::from_millis(300));
                }
            }
        }
    }
}

struct Summary {
    requests: u64,
    retried: u64,
    backoff_ms: u64,
    kills: u64,
    compactions: u64,
    control_failures: u64,
    faults_by_kind: Vec<(FaultKind, usize)>,
}

#[allow(clippy::too_many_lines)]
fn soak(plan: &Plan) -> Result<(Summary, Vec<String>), String> {
    let _ = std::fs::remove_file(&plan.cache);
    let keys = request_keys()?;

    let chaos = ChaosNetConfig {
        seed: plan.seed,
        fault_permille: plan.fault_permille,
        ..ChaosNetConfig::default()
    };
    // Deterministic precondition: the control window must contain both
    // a fault and a clean slot, or the control-phase assertions are
    // meaningless for this seed.
    let control_window = 12u64;
    let schedule: Vec<FaultAction> = (0..control_window).map(|i| chaos.action_for(i)).collect();
    if plan.fault_permille > 0 && schedule.iter().all(|a| *a == FaultAction::Clean) {
        return Err(format!(
            "seed {} injects no fault in the first {control_window} connections; \
             pick another seed",
            plan.seed
        ));
    }
    if !schedule.contains(&FaultAction::Clean) {
        return Err(format!(
            "seed {} leaves no clean connection in the control window",
            plan.seed
        ));
    }

    let mut server = spawn_server(plan)?;
    let proxy =
        ChaosProxy::start(chaos, server.addr).map_err(|e| format!("starting proxy: {e}"))?;
    let proxy_addr = proxy.addr().to_string();

    // ---- Phase A: no-retry control client ----------------------------
    // Sequential requests over the deterministic fault window: without
    // retries, at least one must fail (faults are real), and at least
    // one must succeed (the service works).
    let control_key = keys.first().ok_or("empty key set")?;
    let mut control_failures = 0u64;
    let mut control_successes = 0u64;
    for _ in 0..control_window {
        let outcome = client_request(
            &proxy_addr,
            &control_key.kernel_text,
            &control_key.arch_text,
            None,
            None,
            TIMEOUT,
        );
        match outcome {
            Ok(response) if response_complete(&response) && ok_line(&response).is_some() => {
                control_successes += 1;
            }
            _ => control_failures += 1,
        }
    }
    let mut violations = Vec::new();
    if plan.fault_permille > 0 && control_failures == 0 {
        violations
            .push("control: the no-retry client never failed against injected faults".to_string());
    }
    if control_successes == 0 {
        violations.push("control: the no-retry client never succeeded".to_string());
    }

    // ---- Phase B: retry storm with SIGKILL+restart cycles ------------
    let shared = Arc::new(Shared {
        proxy_addr: proxy_addr.clone(),
        step_limit: plan.step_limit,
        retry_base: RetryConfig {
            retries: plan.retries,
            backoff_ms: plan.backoff_ms,
            seed: plan.seed,
        },
        first_answers: Mutex::new(HashMap::new()),
        violations: Mutex::new(std::mem::take(&mut violations)),
        completed: AtomicU64::new(0),
        retried_total: AtomicU64::new(0),
        backoff_total_ms: AtomicU64::new(0),
    });
    let keys = Arc::new(keys);
    let mut workers = Vec::new();
    for client_index in 0..plan.clients {
        let shared = Arc::clone(&shared);
        let keys = Arc::clone(&keys);
        let rounds = plan.rounds;
        let handle = std::thread::Builder::new()
            .name(format!("soak-good-{client_index}"))
            .spawn(move || good_client(&shared, &keys, rounds, client_index))
            .map_err(|e| format!("spawning client thread: {e}"))?;
        workers.push(handle);
    }
    let evil = {
        let addr = proxy_addr.clone();
        let seed = plan.seed;
        let iterations = 3 * plan.rounds;
        std::thread::Builder::new()
            .name("soak-evil".to_string())
            .spawn(move || evil_client(&addr, seed, iterations))
            .map_err(|e| format!("spawning evil thread: {e}"))?
    };

    // Kill+restart when the completed-request counter crosses evenly
    // spaced thresholds — guaranteed mid-run, independent of timing.
    let total_requests = plan.clients * plan.rounds * keys.len() as u64;
    let mut compactions_total = 0u64;
    let mut kills_done = 0u64;
    while workers.iter().any(|w| !w.is_finished()) {
        let done = shared.completed.load(Ordering::Relaxed);
        let next_threshold = (kills_done + 1) * total_requests / (plan.kills + 1);
        if kills_done < plan.kills && done >= next_threshold && done < total_requests {
            if let Ok(stats) = client_stats(&server.addr.to_string(), TIMEOUT) {
                compactions_total += json_u64(&stats, "compactions").unwrap_or(0);
            }
            kill_server(server);
            server = spawn_server(plan)?;
            proxy.set_upstream(server.addr);
            kills_done += 1;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    for worker in workers {
        let _ = worker.join();
    }
    let _ = evil.join();
    if kills_done < plan.kills {
        // The storm outran the thresholds (tiny run): take the missing
        // kills now, before the verification pass.
        while kills_done < plan.kills {
            if let Ok(stats) = client_stats(&server.addr.to_string(), TIMEOUT) {
                compactions_total += json_u64(&stats, "compactions").unwrap_or(0);
            }
            kill_server(server);
            server = spawn_server(plan)?;
            proxy.set_upstream(server.addr);
            kills_done += 1;
        }
    }

    // ---- Phase C: verification --------------------------------------
    // Snapshot compactions of the surviving process, then one final
    // SIGKILL+restart: the reopened cache must be fully healed.
    if let Ok(stats) = client_stats(&server.addr.to_string(), TIMEOUT) {
        compactions_total += json_u64(&stats, "compactions").unwrap_or(0);
    }
    kill_server(server);
    let server = spawn_server(plan)?;
    proxy.set_upstream(server.addr);

    let mut violations = lock(&shared.violations).clone();
    let healed = server
        .cache_line
        .contains(" 0 quarantined, 0 corrupt lines");
    if !healed {
        violations.push(format!(
            "after final SIGKILL+restart the cache is not healed: {}",
            server.cache_line
        ));
    }

    // Warm pass, direct to the server (no faults): every key answers,
    // byte-identically to the first recorded answer. This doubles as
    // the no-hung-worker check — a wedged worker pool cannot complete
    // a full pass.
    let first = lock(&shared.first_answers).clone();
    for key in keys.iter() {
        let outcome = client_request(
            &server.addr.to_string(),
            &key.kernel_text,
            &key.arch_text,
            None,
            None,
            TIMEOUT,
        );
        let response = match outcome {
            Ok(r) => r,
            Err(e) => {
                violations.push(format!("warm pass {}: {e}", key.label));
                continue;
            }
        };
        let Some(warm) = ok_line(&response) else {
            violations.push(format!("warm pass {}: {response:?}", key.label));
            continue;
        };
        match first.get(&key.label) {
            Some(cold) if cold != warm => violations.push(format!(
                "{}: warm answer diverged: cold {cold:?} vs warm {warm:?}",
                key.label
            )),
            Some(_) => {}
            None => violations.push(format!(
                "{}: never successfully scheduled during the storm",
                key.label
            )),
        }
    }
    if let Ok(stats) = client_stats(&server.addr.to_string(), TIMEOUT) {
        if json_u64(&stats, "quarantined") != Some(0) {
            violations.push(format!("quarantined != 0 after heal: {stats}"));
        }
    } else {
        violations.push("final STATS request failed".to_string());
    }

    // Compaction must have fired when the entry cap demands it.
    let expects_compaction = (keys.len() as u64) > plan.compact_entries;
    if expects_compaction && compactions_total == 0 {
        violations.push(format!(
            "no compaction ran despite {} keys over the {}-entry cap",
            keys.len(),
            plan.compact_entries
        ));
    }

    // Required fault kinds must actually have *fired* — the proxy's
    // injection counters increment at relay time, not at schedule time,
    // so a fault planned against a dead upstream doesn't satisfy the
    // requirement.
    println!("soak: proxy {}", proxy.stats_line());
    let faults_by_kind: Vec<(FaultKind, usize)> = proxy
        .fault_counts()
        .iter()
        .map(|&(k, n)| (k, n as usize))
        .collect();
    for kind in &plan.require_faults {
        let seen = proxy.injected(*kind);
        if seen == 0 {
            violations.push(format!(
                "required fault kind {} was never injected (seed {})",
                kind.name(),
                plan.seed
            ));
        }
    }

    kill_server(server);
    proxy.shutdown();
    let summary = Summary {
        requests: shared.completed.load(Ordering::Relaxed),
        retried: shared.retried_total.load(Ordering::Relaxed),
        backoff_ms: shared.backoff_total_ms.load(Ordering::Relaxed),
        kills: kills_done + 1,
        compactions: compactions_total,
        control_failures,
        faults_by_kind,
    };
    Ok((summary, violations))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") {
        println!("{HELP}");
        return;
    }
    let plan = match parse_plan(&args) {
        Ok(plan) => plan,
        Err(message) => {
            eprintln!("soak: {message}\n{HELP}");
            std::process::exit(2);
        }
    };
    match soak(&plan) {
        Ok((summary, violations)) => {
            let faults: Vec<String> = summary
                .faults_by_kind
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|(k, n)| format!("{}x{n}", k.name()))
                .collect();
            println!(
                "soak: {} requests ({} retried, {} ms backoff), {} control failures, \
                 {} SIGKILLs, {} compactions, faults [{}]",
                summary.requests,
                summary.retried,
                summary.backoff_ms,
                summary.control_failures,
                summary.kills,
                summary.compactions,
                faults.join(", ")
            );
            if violations.is_empty() {
                println!("soak: all invariants held");
            } else {
                for violation in &violations {
                    eprintln!("soak: VIOLATION: {violation}");
                }
                std::process::exit(1);
            }
        }
        Err(message) => {
            eprintln!("soak: setup failed: {message}");
            std::process::exit(2);
        }
    }
}
