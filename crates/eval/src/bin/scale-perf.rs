//! Performance at scale: schedule kernels on the scaled Imagine machines
//! (the §8 projection covers cost only; this appendix checks that
//! communication scheduling keeps working as the machine grows, and that
//! larger distributed machines buy lower IIs through extra buses and
//! units).
//!
//! Usage: `cargo run --release -p csched-eval --bin scale-perf`

use csched_core::{schedule_kernel, validate, SchedulerConfig};

fn main() {
    let kernels = ["FFT", "DCT", "FIR-FP", "Sort"];
    println!(
        "{:<10} {:>6} {:>8} {:>14} {:>10} {:>10}",
        "kernel", "scale", "units", "arch", "II", "copies"
    );
    for name in kernels {
        let w = csched_kernels::by_name(name).expect("known kernel");
        for scale in [1usize, 2, 4] {
            for arch in [
                csched_machine::imagine::central_scaled(scale),
                csched_machine::imagine::distributed_scaled(scale),
            ] {
                let start = std::time::Instant::now();
                match schedule_kernel(&arch, &w.kernel, SchedulerConfig::default()) {
                    Ok(s) => {
                        validate::validate(&arch, &w.kernel, &s).expect("valid at scale");
                        println!(
                            "{:<10} {:>6} {:>8} {:>14} {:>10} {:>10}   ({:.1?})",
                            name,
                            scale,
                            12 * scale,
                            arch.name().replace("imagine-", ""),
                            s.ii().unwrap(),
                            s.num_copies(),
                            start.elapsed()
                        );
                    }
                    Err(e) => println!(
                        "{:<10} {:>6} {:>8} {:>14}   failed: {e}",
                        name,
                        scale,
                        12 * scale,
                        arch.name().replace("imagine-", "")
                    ),
                }
            }
        }
    }
}
