//! Performance at scale: schedule kernels on the scaled Imagine machines
//! (the §8 projection covers cost only; this appendix checks that
//! communication scheduling keeps working as the machine grows, and that
//! larger distributed machines buy lower IIs through extra buses and
//! units).
//!
//! Usage: `cargo run --release -p csched-eval --bin scale-perf [-- --json]`
//!
//! `--json` emits the sweep as a bench-json report (the same record
//! type `bench-json` writes) instead of the table. Exit codes: 0 every
//! cell scheduled and validated, 1 otherwise, 2 usage error.

use std::process::ExitCode;

use csched_core::SchedulerConfig;
use csched_eval::bench;
use csched_machine::imagine;

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    if let Some(bad) = args.iter().find(|a| a.as_str() != "--json") {
        return Err(format!(
            "unknown argument {bad:?} (only --json is accepted)"
        ));
    }

    let kernels = ["FFT", "DCT", "FIR-FP", "Sort"];
    let config = SchedulerConfig::default();
    let mut cells = Vec::new();
    if !json {
        println!(
            "{:<10} {:>6} {:>8} {:>14} {:>10} {:>10}",
            "kernel", "scale", "units", "arch", "II", "copies"
        );
    }
    for name in kernels {
        let w = csched_kernels::by_name(name).ok_or_else(|| format!("unknown kernel {name:?}"))?;
        for scale in [1usize, 2, 4] {
            for arch in [
                imagine::central_scaled(scale),
                imagine::distributed_scaled(scale),
            ] {
                let cell = bench::measure_cell(&arch, &w.kernel, &config, 1);
                if !json {
                    if cell.ok {
                        println!(
                            "{:<10} {:>6} {:>8} {:>14} {:>10} {:>10}   ({:.1} ms)",
                            name,
                            scale,
                            12 * scale,
                            arch.name().replace("imagine-", ""),
                            cell.ii,
                            cell.copies,
                            cell.best_ns as f64 / 1e6
                        );
                    } else {
                        println!(
                            "{:<10} {:>6} {:>8} {:>14}   failed: {}",
                            name,
                            scale,
                            12 * scale,
                            arch.name().replace("imagine-", ""),
                            cell.detail
                        );
                    }
                }
                cells.push(cell);
            }
        }
    }
    let failed = cells.iter().filter(|c| !c.ok).count();
    if json {
        let report = bench::BenchReport {
            label: "scale-perf".to_string(),
            reps: 1,
            cells,
        };
        print!("{}", bench::bench_json(&report));
    }
    Ok(if failed > 0 {
        eprintln!("scale-perf: {failed} cell(s) failed to schedule or validate");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("scale-perf: {e}");
            ExitCode::from(2)
        }
    }
}
