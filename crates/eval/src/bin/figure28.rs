//! Regenerates Figure 28 (per-kernel speedup vs register file
//! architecture) with full validation and simulation of every cell.
//!
//! Usage: `cargo run --release -p csched-eval --bin figure28 [--no-sim]`

use csched_core::SchedulerConfig;
use csched_eval::{grid, report};

fn main() {
    let simulate = !std::env::args().any(|a| a == "--no-sim");
    let grid = grid::run_grid(
        &csched_kernels::all(),
        &csched_machine::imagine::all_variants(),
        &SchedulerConfig::default(),
        simulate,
    )
    .unwrap_or_else(|e| panic!("evaluation failed: {e}"));
    println!("{}", report::figure28(&grid));
}
