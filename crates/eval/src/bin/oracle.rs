//! Exact-scheduling oracle: certifies minimum IIs and reports the
//! heuristic optimality gap.
//!
//! Usage: `cargo run --release -p csched-eval --bin oracle --
//! [--cell <kernel> <arch>]... [--journal <path>] [--resume]
//! [--exact-steps <n>] [--heuristic-steps <n>] [--max-ii <n>]
//! [--explore-sample <n>] [--seed <n>] [--table] [--help]`
//!
//! With no `--cell` flags the oracle sweeps the full paper grid (ten
//! Table 1 kernels × four Imagine register-file organisations) plus
//! `--explore-sample` seeded explore-family machines; each `--cell`
//! restricts the run to that kernel × architecture pair (`arch` is
//! `central`, `clustered2`, `clustered4`, or `distributed`). `--journal`
//! appends each finished cell to a JSONL journal as soon as it
//! completes; `--resume` replays completed cells from that journal so a
//! killed run recomputes nothing, and the report is byte-identical to an
//! uninterrupted one. Output is the `gap-v1` JSON report (or a
//! plain-text table with `--table`).
//!
//! Exit status: 0 on success (including `gap_unknown` cells — an
//! exhausted search budget is an answer, not an error), 1 when any cell
//! records a `disagreement` (the oracle certified a minimum II *above* a
//! validated heuristic schedule — a soundness bug), 2 on usage or
//! journal errors.

// The oracle is the soundness arbiter: it must report typed failures,
// never panic its way out of a cell.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::PathBuf;
use std::process::ExitCode;

use csched_eval::gap::{gap_json, gap_table, run_gap, run_gap_over, GapCell, GapConfig};

const HELP: &str = "usage: oracle [flags]
  --cell <kernel> <arch>  certify one cell (repeatable); arch is central |
                          clustered2 | clustered4 | distributed
  --journal <path>        append each finished cell to a JSONL journal
  --resume                replay completed cells from --journal
  --exact-steps <n>       oracle step budget per cell (default 2000000)
  --heuristic-steps <n>   heuristic step budget per cell (default 400000)
  --max-ii <n>            oracle II search cap (default 128)
  --explore-sample <n>    seeded explore machines appended to the grid
  --seed <n>              explore subsample seed (default 2000)
  --table                 plain-text table instead of gap-v1 JSON
  --help                  this text
exit status: 0 ok, 1 soundness disagreement, 2 usage/journal error";

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("oracle: {msg}");
    eprintln!("{HELP}");
    ExitCode::from(2)
}

fn parse_num(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(default);
    };
    let Some(v) = args.get(i + 1) else {
        return Err(format!("{flag} needs a value"));
    };
    v.parse().map_err(|_| format!("{flag}: not a number: {v}"))
}

fn arch_by_name(name: &str) -> Option<csched_machine::Architecture> {
    match name {
        "central" => Some(csched_machine::imagine::central()),
        "clustered2" => Some(csched_machine::imagine::clustered(2)),
        "clustered4" => Some(csched_machine::imagine::clustered(4)),
        "distributed" => Some(csched_machine::imagine::distributed()),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    }

    let mut cfg = GapConfig::default();
    match parse_num(&args, "--exact-steps", cfg.exact_step_limit) {
        Ok(v) => cfg.exact_step_limit = v,
        Err(e) => return usage_err(&e),
    }
    match parse_num(&args, "--heuristic-steps", cfg.heuristic_step_limit) {
        Ok(v) => cfg.heuristic_step_limit = v,
        Err(e) => return usage_err(&e),
    }
    match parse_num(&args, "--seed", cfg.seed) {
        Ok(v) => cfg.seed = v,
        Err(e) => return usage_err(&e),
    }
    match parse_num(&args, "--max-ii", u64::from(cfg.exact.max_ii)) {
        Ok(v) if v <= u64::from(u32::MAX) => cfg.exact.max_ii = v as u32,
        Ok(v) => return usage_err(&format!("--max-ii: {v} does not fit in u32")),
        Err(e) => return usage_err(&e),
    }
    match parse_num(&args, "--explore-sample", cfg.explore_sample as u64) {
        Ok(v) => cfg.explore_sample = v as usize,
        Err(e) => return usage_err(&e),
    }

    let journal: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--journal")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let resume = args.iter().any(|a| a == "--resume");
    if resume && journal.is_none() {
        return usage_err("--resume needs --journal");
    }

    // Collect explicit cells.
    let mut cells: Vec<GapCell> = Vec::new();
    let mut i = 0;
    while let Some(pos) = args[i..].iter().position(|a| a == "--cell") {
        let at = i + pos;
        let (Some(kernel_name), Some(arch_name)) = (args.get(at + 1), args.get(at + 2)) else {
            return usage_err("--cell needs <kernel> <arch>");
        };
        let Some(w) = csched_kernels::by_name(kernel_name) else {
            return usage_err(&format!("unknown kernel {kernel_name}"));
        };
        let Some(arch) = arch_by_name(arch_name) else {
            return usage_err(&format!("unknown arch {arch_name}"));
        };
        cells.push(GapCell {
            arch,
            kernel: w.kernel.clone(),
        });
        i = at + 3;
    }

    let report = if cells.is_empty() {
        run_gap(&cfg, journal.as_deref(), resume)
    } else {
        run_gap_over(&cells, &cfg, journal.as_deref(), resume)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("oracle: {e}");
            return ExitCode::from(2);
        }
    };

    if args.iter().any(|a| a == "--table") {
        print!("{}", gap_table(&report));
    } else {
        println!("{}", gap_json(&report));
    }
    for r in report.disagreements() {
        eprintln!(
            "oracle: SOUNDNESS DISAGREEMENT on {} x {}: {}",
            r.kernel, r.arch, r.detail
        );
    }
    if report.disagreements().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
