//! Hosts the hardened scheduler service (`csched_eval::serve`) and ships
//! a small client for exercising it — including the cold-vs-warm
//! cache-throughput benchmark the CI smoke run gates on.
//!
//! Server: `serve --addr 127.0.0.1:0 [--cache <path>] [--durable]
//! [--jobs N] [--queue N] [--step-limit N] [--wall-ms N]` — prints
//! `listening on <addr>` (port 0 resolved) and serves until killed.
//!
//! Client: `serve --client <addr>` plus one of
//! `--kernel <name> --arch <org>` (one request; add `--limit`/`--wall-ms`),
//! `--stats` (the counters JSON line), `--malformed` (a deliberately
//! broken request, expecting `ERR malformed`), or `--bench-suite`
//! (schedule the whole Table 1 suite cold, then again warm, print both
//! rates, and exit 1 if warm/cold < `--min-ratio`, default 10).

use std::time::{Duration, Instant};

use csched_eval::serve::{
    client_metrics, client_raw, client_request, client_request_retry, client_stats, client_trace,
    RetryConfig, ServeConfig, Server,
};
use csched_ir::text as ir_text;
use csched_machine::text as machine_text;

const HELP: &str = "usage:
  serve --addr <host:port> [server flags]    host the service
  serve --client <host:port> <client mode>   talk to a running service
server flags:
  --cache <path>    persistent schedule-cache journal
  --durable         fsync each cache append
  --jobs N          worker threads (default 4)
  --queue N         admission-queue capacity (default 16)
  --step-limit N    default placement-attempt budget per request
  --wall-ms N       wall-clock deadline per request
  --compact-bytes N journal byte threshold for compaction
  --compact-entries N
                    cache entry cap (oldest evicted beyond it)
  --read-phase-ms N budget to read one whole request (slowloris guard)
  --no-telemetry    disable per-request spans and histograms
  --span-ring N     recent-request span ring capacity (default 64)
  --trace-events N  per-request cap on streamed TRACE events (default 4096)
client modes:
  --kernel <name> --arch <org> [--limit N] [--wall-ms N]
                    one SCHED request (org: central | clustered2 |
                    clustered4 | distributed); add --retries N
                    [--backoff-ms N] [--retry-seed N] to retry torn or
                    transient failures with seeded jittered backoff;
                    add --trace [--events N] [--full] to stream the
                    schedule's trace events as JSONL instead
  --stats           print the service counters JSON line
  --metrics         print the METRICS JSON line + Prometheus exposition
  --malformed       send a broken request; expect ERR malformed
  --bench-suite [--min-ratio N]
                    cold vs warm requests/sec over the kernel suite;
                    exit 1 if warm/cold < N (default 10)
  --help            this text";

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn num_flag(args: &[String], flag: &str) -> Option<u64> {
    flag_value(args, flag).map(|v| v.parse().unwrap_or_else(|_| panic!("bad {flag} value {v}")))
}

fn arch_by_name(name: &str) -> csched_machine::Architecture {
    match name {
        "central" => csched_machine::imagine::central(),
        "clustered2" => csched_machine::imagine::clustered(2),
        "clustered4" => csched_machine::imagine::clustered(4),
        "distributed" => csched_machine::imagine::distributed(),
        other => {
            panic!("unknown arch {other} (want central | clustered2 | clustered4 | distributed)")
        }
    }
}

const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") || args.is_empty() {
        println!("{HELP}");
        return;
    }
    if let Some(addr) = flag_value(&args, "--addr") {
        run_server(&addr, &args);
    } else if let Some(addr) = flag_value(&args, "--client") {
        run_client(&addr, &args);
    } else {
        eprintln!("need --addr (server) or --client (client)\n{HELP}");
        std::process::exit(2);
    }
}

fn run_server(addr: &str, args: &[String]) {
    let mut config = ServeConfig {
        cache_path: flag_value(args, "--cache").map(Into::into),
        durable: args.iter().any(|a| a == "--durable"),
        wall_ms: num_flag(args, "--wall-ms"),
        ..ServeConfig::default()
    };
    if let Some(jobs) = num_flag(args, "--jobs") {
        config.jobs = jobs as usize;
    }
    if let Some(queue) = num_flag(args, "--queue") {
        config.queue_cap = queue as usize;
    }
    if let Some(limit) = num_flag(args, "--step-limit") {
        config.step_limit = limit;
    }
    if let Some(bytes) = num_flag(args, "--compact-bytes") {
        config.compaction.max_journal_bytes = bytes;
    }
    if let Some(entries) = num_flag(args, "--compact-entries") {
        config.compaction.max_entries = entries as usize;
    }
    if let Some(ms) = num_flag(args, "--read-phase-ms") {
        config.read_phase_ms = ms;
    }
    if args.iter().any(|a| a == "--no-telemetry") {
        config.telemetry = false;
    }
    if let Some(ring) = num_flag(args, "--span-ring") {
        config.span_ring = ring as usize;
    }
    if let Some(cap) = num_flag(args, "--trace-events") {
        config.trace_event_cap = cap as usize;
    }
    let (server, load) = Server::bind(addr, config).expect("server starts");
    println!(
        "cache: {} entries, {} quarantined, {} corrupt lines, {} torn bytes repaired",
        load.entries, load.quarantined, load.corrupt_lines, load.repaired_bytes
    );
    // Flushed before the address so scripts can parse the last line.
    println!("listening on {}", server.addr());
    // Serve until killed; the cache journal is flushed per append, so an
    // abrupt SIGKILL here is exactly the crash-consistency test case.
    loop {
        std::thread::park();
    }
}

fn run_client(addr: &str, args: &[String]) {
    if args.iter().any(|a| a == "--stats") {
        println!(
            "{}",
            client_stats(addr, CLIENT_TIMEOUT).expect("stats request")
        );
    } else if args.iter().any(|a| a == "--metrics") {
        print!(
            "{}",
            client_metrics(addr, CLIENT_TIMEOUT).expect("metrics request")
        );
    } else if args.iter().any(|a| a == "--malformed") {
        let response =
            client_raw(addr, b"BOGUS request\n", CLIENT_TIMEOUT).expect("malformed probe");
        print!("{response}");
        assert!(
            response.starts_with("ERR malformed"),
            "expected a typed malformed rejection, got: {response}"
        );
    } else if args.iter().any(|a| a == "--bench-suite") {
        bench_suite(addr, num_flag(args, "--min-ratio").unwrap_or(10));
    } else if let Some(kernel_name) = flag_value(args, "--kernel") {
        let w = csched_kernels::by_name(&kernel_name).expect("unknown kernel");
        let arch =
            arch_by_name(&flag_value(args, "--arch").unwrap_or_else(|| "distributed".to_string()));
        let kernel_text = ir_text::print(&w.kernel);
        let arch_text = machine_text::print(&arch);
        let limit = num_flag(args, "--limit");
        let wall_ms = num_flag(args, "--wall-ms");
        if args.iter().any(|a| a == "--trace") {
            let events = num_flag(args, "--events").map(|n| n as usize);
            let full = args.iter().any(|a| a == "--full");
            let response =
                client_trace(addr, &kernel_text, &arch_text, events, full, CLIENT_TIMEOUT)
                    .expect("trace request");
            print!("{response}");
            if response
                .lines()
                .last()
                .is_some_and(|l| l.starts_with("ERR "))
            {
                std::process::exit(1);
            }
            return;
        }
        let response = if let Some(retries) = num_flag(args, "--retries") {
            let retry = RetryConfig {
                retries: retries as u32,
                backoff_ms: num_flag(args, "--backoff-ms").unwrap_or(50),
                seed: num_flag(args, "--retry-seed").unwrap_or(0x5eed),
            };
            let (outcome, report) = client_request_retry(
                addr,
                &kernel_text,
                &arch_text,
                limit,
                wall_ms,
                CLIENT_TIMEOUT,
                &retry,
            );
            eprintln!(
                "retry: {} attempts, {} ms backoff{}",
                report.attempts,
                report.total_backoff_ms,
                if report.retried.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", report.retried.join("; "))
                }
            );
            outcome.expect("request")
        } else {
            client_request(
                addr,
                &kernel_text,
                &arch_text,
                limit,
                wall_ms,
                CLIENT_TIMEOUT,
            )
            .expect("request")
        };
        print!("{response}");
        if response.starts_with("ERR ") {
            std::process::exit(1);
        }
    } else {
        eprintln!("need a client mode\n{HELP}");
        std::process::exit(2);
    }
}

/// Schedules the whole kernel suite against the four Imagine machines
/// twice — cold (first pass populates the cache) and warm (second pass
/// must hit) — and gates on the warm/cold throughput ratio.
fn bench_suite(addr: &str, min_ratio: u64) {
    let archs = [
        ("central", csched_machine::imagine::central()),
        ("clustered2", csched_machine::imagine::clustered(2)),
        ("clustered4", csched_machine::imagine::clustered(4)),
        ("distributed", csched_machine::imagine::distributed()),
    ];
    let requests: Vec<(String, String)> = csched_kernels::all()
        .iter()
        .flat_map(|w| {
            let kernel_text = ir_text::print(&w.kernel);
            archs
                .iter()
                .map(move |(_, arch)| (kernel_text.clone(), machine_text::print(arch)))
                .collect::<Vec<_>>()
        })
        .collect();

    let pass = |label: &str, expect_cache: &str| -> f64 {
        let start = Instant::now();
        let mut hits = 0usize;
        for (kernel_text, arch_text) in &requests {
            let response = client_request(addr, kernel_text, arch_text, None, None, CLIENT_TIMEOUT)
                .expect("suite request");
            assert!(
                response.contains("\nOK ") || response.starts_with("OK "),
                "{label} request failed: {response}"
            );
            if response.starts_with(&format!("CACHE {expect_cache}")) {
                hits += 1;
            }
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let rps = requests.len() as f64 / elapsed;
        println!(
            "{label}: {} requests in {elapsed:.3}s = {rps:.1} req/s ({hits}/{} {expect_cache})",
            requests.len(),
            requests.len(),
        );
        rps
    };

    let cold = pass("cold", "miss");
    let warm = pass("warm", "hit");
    let ratio = warm / cold.max(1e-9);
    println!("warm/cold ratio: {ratio:.1}x (gate: >= {min_ratio}x)");
    if ratio < min_ratio as f64 {
        eprintln!("FAIL: warm cache speedup below the {min_ratio}x gate");
        std::process::exit(1);
    }
}
