//! Seeded multi-fault chaos campaign against the scheduler.
//!
//! Usage: `cargo run --release -p csched-eval --bin chaos --
//! [--seed <n>] [--runs <n>] [--max-faults <n>] [--step-limit <n>]
//! [--arch toy|central|clustered|distributed] [--kernels <n>]`
//!
//! Draws `--runs` pseudo-random combinations of up to `--max-faults`
//! simultaneous resource faults (dead buses, ports, functional units),
//! schedules the first `--kernels` Table 1 workloads on each degraded
//! machine under a hard `--step-limit` placement-attempt budget, and
//! prints the campaign digest. The digest is a pure function of the
//! seed, machine, kernels, and configuration — rerunning with the same
//! arguments reproduces it byte for byte.
//!
//! Exits 0 when every run held the robustness contract (valid schedule,
//! typed rejection, or in-deadline stop — never a panic, never a budget
//! overrun), 1 otherwise. CI runs a tiny seeded campaign as a smoke
//! test.

use csched_core::faultinject::{chaos_campaign, render_chaos_campaign, ChaosConfig};
use csched_core::SchedulerConfig;
use csched_ir::Kernel;

fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn numeric_flag<T: std::str::FromStr>(flag: &str, default: T) -> T {
    match flag_value(flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: not a number: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn main() {
    let defaults = ChaosConfig::default();
    let chaos = ChaosConfig {
        seed: numeric_flag("--seed", defaults.seed),
        runs: numeric_flag("--runs", defaults.runs),
        max_faults: numeric_flag("--max-faults", defaults.max_faults),
        step_limit: numeric_flag("--step-limit", defaults.step_limit),
    };
    let arch = match flag_value("--arch").as_deref() {
        None | Some("distributed") => csched_machine::imagine::distributed(),
        Some("central") => csched_machine::imagine::central(),
        Some("clustered") => csched_machine::imagine::clustered(2),
        Some("toy") => csched_machine::toy::motivating_example(),
        Some(other) => {
            eprintln!("--arch: unknown machine: {other}");
            std::process::exit(2);
        }
    };
    let kernel_count: usize = numeric_flag("--kernels", 3);

    let workloads = csched_kernels::all();
    let kernels: Vec<(&str, &Kernel)> = workloads
        .iter()
        .take(kernel_count.max(1))
        .map(|w| (w.kernel.name(), &w.kernel))
        .collect();

    let entries = chaos_campaign(&arch, &kernels, &SchedulerConfig::default(), &chaos);
    print!("{}", render_chaos_campaign(&entries));

    let violations: Vec<_> = entries
        .iter()
        .filter(|e| !e.verdict.contract_held() || e.attempts_spent > e.step_limit)
        .collect();
    if !violations.is_empty() {
        for v in violations {
            eprintln!(
                "CONTRACT VIOLATION: run {} kernel {} faults {:?}: {:?}",
                v.run, v.kernel, v.fault_descs, v.verdict
            );
        }
        std::process::exit(1);
    }
}
