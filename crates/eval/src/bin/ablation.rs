//! One-shot ablation table (quality only; `cargo bench -p csched-bench
//! --bench ablations` adds timing): the §4.4/§4.6 design choices on a
//! subset of kernels across the distributed and clustered(4) machines.
//!
//! Usage: `cargo run --release -p csched-eval --bin ablation`

use csched_core::{schedule_kernel, SchedulerConfig};

fn main() {
    let kernels = ["FFT", "DCT", "Sort", "Merge", "Block Warp"];
    let archs = [
        csched_machine::imagine::distributed(),
        csched_machine::imagine::clustered(4),
    ];
    let configs: Vec<(&str, SchedulerConfig)> = vec![
        ("paper", SchedulerConfig::paper()),
        ("cycle-order", SchedulerConfig::cycle_order()),
        ("no-comm-cost", SchedulerConfig::without_comm_cost()),
        ("no-closing-first", SchedulerConfig::without_closing_first()),
        (
            "budget-8",
            SchedulerConfig {
                search_budget: 8,
                ..SchedulerConfig::default()
            },
        ),
    ];
    for arch in &archs {
        println!("=== {} : II (copies) ===", arch.name());
        print!("{:<18}", "config");
        for k in kernels {
            print!("{k:>14}");
        }
        println!();
        for (label, config) in &configs {
            print!("{label:<18}");
            for k in kernels {
                let w = csched_kernels::by_name(k).expect("known kernel");
                match schedule_kernel(arch, &w.kernel, config.clone()) {
                    Ok(s) => print!(
                        "{:>14}",
                        format!("{} ({})", s.ii().unwrap_or(0), s.num_copies())
                    ),
                    Err(_) => print!("{:>14}", "fail"),
                }
            }
            println!();
        }
        println!();
    }
}
