//! Perf-regression bench harness: measure the kernel×arch grid into a
//! `BENCH_<label>.json`, or diff two such files.
//!
//! Generate:
//! `cargo run --release -p csched-eval --bin bench-json -- --label ci
//! [--reps N] [--kernels FFT,Merge] [--archs central,distributed]
//! [--out PATH] [--jobs N]`
//!
//! `--jobs` parallelises the sweep (deterministic fields unchanged;
//! timings get noisier under contention, so keep baselines at 1).
//!
//! Compare:
//! `cargo run --release -p csched-eval --bin bench-json -- --compare
//! BASELINE CURRENT [--time-tolerance 2.0] [--strict-time]`
//!
//! Deterministic fields (ok, II, copies, attempts) are compared exactly
//! — any drift exits 1. Wall clock is advisory unless `--strict-time`,
//! because the committed baseline was measured on other hardware.
//! Exit codes: 0 clean, 1 regression, 2 usage or I/O error.

use std::process::ExitCode;

use csched_core::SchedulerConfig;
use csched_eval::bench;
use csched_machine::imagine;

#[derive(Debug)]
enum CliError {
    Usage(String),
    UnknownKernel(String),
    UnknownArch(String),
    Io(String, std::io::Error),
    Parse(String, bench::BenchParseError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::UnknownKernel(k) => write!(f, "unknown kernel {k:?}"),
            CliError::UnknownArch(a) => write!(
                f,
                "unknown arch {a:?} (want central|clustered2|clustered4|distributed)"
            ),
            CliError::Io(path, e) => write!(f, "{path}: {e}"),
            CliError::Parse(path, e) => write!(f, "{path}: {e}"),
        }
    }
}

fn arch_by_name(name: &str) -> Result<csched_machine::Architecture, CliError> {
    match name {
        "central" => Ok(imagine::central()),
        "clustered2" => Ok(imagine::clustered(2)),
        "clustered4" => Ok(imagine::clustered(4)),
        "distributed" => Ok(imagine::distributed()),
        other => Err(CliError::UnknownArch(other.to_string())),
    }
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .map(Some)
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value"))),
    }
}

fn run() -> Result<ExitCode, CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(i) = args.iter().position(|a| a == "--compare") {
        let base_path = args
            .get(i + 1)
            .ok_or_else(|| CliError::Usage("--compare needs BASELINE and CURRENT".into()))?;
        let cur_path = args
            .get(i + 2)
            .ok_or_else(|| CliError::Usage("--compare needs BASELINE and CURRENT".into()))?;
        let tolerance: f64 = match flag_value(&args, "--time-tolerance")? {
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --time-tolerance {v:?}")))?,
            None => 2.0,
        };
        let strict_time = args.iter().any(|a| a == "--strict-time");
        let read = |path: &String| -> Result<bench::BenchReport, CliError> {
            let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.clone(), e))?;
            bench::parse_bench_json(&text).map_err(|e| CliError::Parse(path.clone(), e))
        };
        let baseline = read(base_path)?;
        let current = read(cur_path)?;
        let outcome = bench::compare(&baseline, &current, tolerance);
        print!("{}", outcome.render());
        let failed =
            !outcome.failures.is_empty() || (strict_time && !outcome.advisories.is_empty());
        return Ok(if failed {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        });
    }

    let label = flag_value(&args, "--label")?.unwrap_or_else(|| "local".to_string());
    let reps: u32 = match flag_value(&args, "--reps")? {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --reps {v:?}")))?,
        None => 3,
    };
    let workloads: Vec<csched_kernels::Workload> = match flag_value(&args, "--kernels")? {
        Some(list) => list
            .split(',')
            .map(|name| {
                csched_kernels::by_name(name).ok_or_else(|| CliError::UnknownKernel(name.into()))
            })
            .collect::<Result<_, _>>()?,
        None => csched_kernels::all(),
    };
    let archs: Vec<csched_machine::Architecture> = match flag_value(&args, "--archs")? {
        Some(list) => list
            .split(',')
            .map(arch_by_name)
            .collect::<Result<_, _>>()?,
        None => vec![
            imagine::central(),
            imagine::clustered(2),
            imagine::clustered(4),
            imagine::distributed(),
        ],
    };
    let out_path = flag_value(&args, "--out")?.unwrap_or_else(|| format!("BENCH_{label}.json"));
    let jobs: usize = match flag_value(&args, "--jobs")? {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --jobs {v:?}")))?,
        None => 1,
    };

    let kernels: Vec<&csched_ir::Kernel> = workloads.iter().map(|w| &w.kernel).collect();
    let report = bench::run_bench_jobs(
        &label,
        reps,
        &kernels,
        &archs,
        &SchedulerConfig::default(),
        jobs,
    );
    std::fs::write(&out_path, bench::bench_json(&report))
        .map_err(|e| CliError::Io(out_path.clone(), e))?;
    let bad = report.cells.iter().filter(|c| !c.ok).count();
    eprintln!(
        "wrote {out_path}: {} cells ({} failed), best-of-{reps} timings",
        report.cells.len(),
        bad
    );
    Ok(if bad > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench-json: {e}");
            ExitCode::from(2)
        }
    }
}
