//! Bottleneck attribution for one kernel×architecture cell: names the
//! constraint binding the achieved II (the recurrence cycle setting
//! RecMII, the unit saturating ResMII, or the transport resource that
//! forced the II past both), ranks resources by occupancy, and prints
//! counterfactual bounds.
//!
//! Usage:
//! `cargo run --release -p csched-eval --bin explain -- <kernel>
//! [central|clustered2|clustered4|distributed] [--json]`
//!
//! `--json` prints the attribution as one JSON object (stable field
//! order; the CI smoke step greps it). Exit codes: 0 ok, 1 scheduling
//! failed, 2 usage error.

use std::process::ExitCode;

use csched_core::{explain, schedule_kernel, SchedulerConfig};
use csched_machine::imagine;

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kernel_name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("usage: explain <kernel> [arch] [--json]")?;
    let arch_name = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .map(String::as_str)
        .unwrap_or("distributed");
    let w = csched_kernels::by_name(kernel_name)
        .ok_or_else(|| format!("unknown kernel {kernel_name:?}"))?;
    let arch = match arch_name {
        "central" => imagine::central(),
        "clustered2" => imagine::clustered(2),
        "clustered4" => imagine::clustered(4),
        "distributed" => imagine::distributed(),
        other => {
            return Err(format!(
                "unknown arch {other:?} (want central|clustered2|clustered4|distributed)"
            ))
        }
    };
    let s = match schedule_kernel(&arch, &w.kernel, SchedulerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "explain: scheduling {} on {} failed: {e}",
                w.kernel.name(),
                arch.name()
            );
            return Ok(ExitCode::from(1));
        }
    };
    let ex = explain::explain(&arch, &w.kernel, &s);
    if args.iter().any(|a| a == "--json") {
        println!("{}", ex.to_json());
    } else {
        print!("{}", ex.render_text());
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("explain: {e}");
            ExitCode::from(2)
        }
    }
}
