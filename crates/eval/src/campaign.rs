//! Crash-consistent evaluation campaigns with per-cell isolation.
//!
//! A *campaign* is the kernel × architecture grid of [`crate::grid`],
//! rerun with three robustness upgrades:
//!
//! 1. **Per-cell isolation** — every cell finishes with a typed
//!    [`CellStatus`] (`Ok`, `Failed`, `TimedOut`, or `Skipped`); one bad
//!    cell never aborts the rest of the grid, unlike the fail-fast
//!    [`crate::grid::run_grid`].
//! 2. **Deadlines** — every scheduling call runs under a hard
//!    [`StepBudget`] of placement attempts, so no cell can stall the
//!    campaign; the attempt-denominated budget keeps timeouts
//!    deterministic across machines.
//! 3. **Checkpointing** — each completed cell is appended to a JSONL
//!    [`Journal`] keyed by a hash of (kernel, architecture, scheduler
//!    configuration) and flushed immediately. A campaign killed mid-run
//!    resumes from its journal, skips completed cells, and — because the
//!    scheduler and budget are deterministic — produces a report
//!    byte-for-byte identical to the uninterrupted run. A torn final
//!    line (the crash arriving mid-write) is tolerated on load.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use csched_core::trace::json_escape;
use csched_core::{
    regalloc, schedule_kernel_budgeted, validate, SchedError, SchedulerConfig, StepBudget,
};
use csched_ir::Kernel;
use csched_machine::Architecture;

use crate::grid::{Cell, Grid, Row};

/// How one campaign cell ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// Scheduled and validated on its architecture.
    Ok,
    /// The scheduler returned a typed error, or validation rejected the
    /// schedule.
    Failed,
    /// The cell's placement-attempt budget ran dry before an answer.
    TimedOut,
    /// The cell never ran (for example its kernel file failed to parse).
    Skipped,
}

impl CellStatus {
    /// Stable lower-snake name used in journals and reports.
    pub fn name(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed => "failed",
            CellStatus::TimedOut => "timed_out",
            CellStatus::Skipped => "skipped",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(CellStatus::Ok),
            "failed" => Some(CellStatus::Failed),
            "timed_out" => Some(CellStatus::TimedOut),
            "skipped" => Some(CellStatus::Skipped),
            _ => None,
        }
    }
}

/// One journaled campaign cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellRecord {
    /// Kernel name.
    pub kernel: String,
    /// Architecture name (`-` for cells that never reached a machine).
    pub arch: String,
    /// How the cell ended.
    pub status: CellStatus,
    /// Loop initiation interval (0 unless `status == Ok`).
    pub ii: u32,
    /// Copy operations in the schedule (0 unless `status == Ok`).
    pub copies: usize,
    /// Maximum register demand in any file (0 unless `status == Ok`).
    pub max_registers: usize,
    /// Placement attempts the cell charged to its budget.
    pub attempts: u64,
    /// Error or skip reason; empty on `Ok`.
    pub detail: String,
}

impl CellRecord {
    /// A `Skipped` record for work that never ran (e.g. a parse failure).
    pub fn skipped(kernel: &str, detail: String) -> Self {
        CellRecord {
            kernel: kernel.to_string(),
            arch: "-".to_string(),
            status: CellStatus::Skipped,
            ii: 0,
            copies: 0,
            max_registers: 0,
            attempts: 0,
            detail,
        }
    }

    /// Renders the record as one JSON object (one journal line, sans the
    /// key field the journal itself adds).
    pub(crate) fn json_fields(&self) -> String {
        format!(
            "\"kernel\":\"{}\",\"arch\":\"{}\",\"status\":\"{}\",\"ii\":{},\"copies\":{},\
             \"max_registers\":{},\"attempts\":{},\"detail\":\"{}\"",
            json_escape(&self.kernel),
            json_escape(&self.arch),
            self.status.name(),
            self.ii,
            self.copies,
            self.max_registers,
            self.attempts,
            json_escape(&self.detail),
        )
    }
}

/// FNV-1a over the cell's identity: kernel name, architecture name, and
/// the scheduler-configuration fingerprint. Journal entries from a
/// different configuration therefore never match on resume.
pub fn cell_key(kernel: &str, arch: &str, fingerprint: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [kernel, "\u{1f}", arch, "\u{1f}", fingerprint] {
        for b in part.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// A stable fingerprint of everything that decides a cell's outcome:
/// the scheduler configuration knobs plus the campaign step limit.
pub fn config_fingerprint(config: &SchedulerConfig, step_limit: u64) -> String {
    format!(
        "order={:?};heur={};closing={};search={};stubs={};copyatt={};noscan={};copydepth={};\
         delay={};xslack={};maxii={};attperii={};fucand={};step_limit={step_limit}",
        config.order,
        config.comm_cost_heuristic,
        config.closing_first,
        config.search_budget,
        config.max_stub_candidates,
        config.max_copy_attempts,
        config.no_copy_scan,
        config.max_copy_depth,
        config.max_delay,
        config.cross_block_copy_slack,
        config.max_ii,
        config.max_attempts_per_ii,
        config.max_fu_candidates,
    )
}

/// Typed errors from the campaign's journal I/O.
#[derive(Debug)]
pub enum CampaignError {
    /// A journal file operation failed.
    Io {
        /// The journal path.
        path: PathBuf,
        /// What was being done ("open", "append", "flush", "read").
        operation: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A journal line other than a torn final line failed to parse.
    Corrupt {
        /// The journal path.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// The journal cannot be created at this path at all — its parent
    /// directory is missing, or the location is read-only. Unlike the
    /// transient [`CampaignError::Io`], retrying cannot help; the path
    /// itself is wrong.
    Unwritable {
        /// The journal path that was requested.
        path: PathBuf,
        /// Why the path cannot hold a journal.
        detail: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io {
                path,
                operation,
                source,
            } => write!(
                f,
                "journal {}: {operation} failed: {source}",
                path.display()
            ),
            CampaignError::Corrupt { path, line, detail } => {
                write!(f, "journal {} line {line}: {detail}", path.display())
            }
            CampaignError::Unwritable { path, detail } => {
                write!(f, "journal path {} is unusable: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io { source, .. } => Some(source),
            CampaignError::Corrupt { .. } | CampaignError::Unwritable { .. } => None,
        }
    }
}

/// An append-only JSONL checkpoint journal: one line per completed cell,
/// flushed as soon as it is written so a crash loses at most the line in
/// flight — which [`Journal::load`] tolerates as a torn tail.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    durable: bool,
    repaired: u64,
}

impl Journal {
    /// Opens `path` for appending, creating it if needed.
    ///
    /// If the previous campaign crashed mid-append the file ends in a
    /// torn, newline-less fragment; appending after it would weld the
    /// fragment onto the next record. Open therefore *repairs* first:
    /// anything after the last newline is truncated away (the cell it
    /// belonged to was never completed, so nothing is lost).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Unwritable`] when the path cannot hold a journal
    /// at all (missing parent directory, read-only location);
    /// [`CampaignError::Io`] for transient I/O failures.
    pub fn open(path: &Path) -> Result<Journal, CampaignError> {
        let io = |operation: &'static str| {
            let path = path.to_path_buf();
            move |source| CampaignError::Io {
                path,
                operation,
                source,
            }
        };
        // Diagnose the two permanently-wrong cases up front with a typed
        // error naming the path, instead of letting the raw OS error
        // (which names neither the path nor the reason it is wrong)
        // bubble out of `open`.
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() && !parent.exists() {
                return Err(CampaignError::Unwritable {
                    path: path.to_path_buf(),
                    detail: format!("parent directory {} does not exist", parent.display()),
                });
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|source| {
                if source.kind() == std::io::ErrorKind::PermissionDenied {
                    CampaignError::Unwritable {
                        path: path.to_path_buf(),
                        detail: "permission denied (read-only directory or file)".to_string(),
                    }
                } else {
                    CampaignError::Io {
                        path: path.to_path_buf(),
                        operation: "open",
                        source,
                    }
                }
            })?;
        let contents = std::fs::read(path).map_err(io("read"))?;
        let keep = match contents.iter().rposition(|&b| b == b'\n') {
            Some(last_newline) => last_newline as u64 + 1,
            None => 0,
        };
        if keep != contents.len() as u64 {
            file.set_len(keep).map_err(io("truncate"))?;
        }
        use std::io::Seek as _;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0)).map_err(io("seek"))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            durable: false,
            repaired: contents.len() as u64 - keep,
        })
    }

    /// Bytes of torn tail (a crash arriving mid-append) that
    /// [`open`](Self::open) truncated away; 0 for a cleanly closed
    /// journal.
    pub fn repaired_bytes(&self) -> u64 {
        self.repaired
    }

    /// [`open`](Self::open) with durable sync enabled from the start.
    pub fn open_durable(path: &Path) -> Result<Journal, CampaignError> {
        let mut journal = Self::open(path)?;
        journal.set_durable(true);
        Ok(journal)
    }

    /// Switches durable sync on or off.
    ///
    /// With durable sync **off** (the default), [`append`](Self::append)
    /// flushes to the OS — enough to survive a killed *process* (the
    /// campaign contract) but not a lost *machine*: data sitting in the
    /// page cache dies with a power loss. With durable sync **on**,
    /// every append additionally `fsync`s file data to the device before
    /// returning, so a journal whose append succeeded survives power
    /// loss too. The serve cache runs durable; bulk campaigns usually
    /// prefer the faster flush-only mode.
    pub fn set_durable(&mut self, durable: bool) {
        self.durable = durable;
    }

    /// Whether durable (fsync-per-append) mode is on.
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// The path this journal appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one raw, newline-terminated-by-us line and flushes it to
    /// the OS (and, in durable mode, to the device) before returning —
    /// the primitive under [`append`](Self::append), exposed so other
    /// journal-backed stores (the serve schedule cache) reuse the same
    /// open/repair/flush machinery with their own record format.
    ///
    /// `line` must not itself contain a newline.
    pub fn append_line(&mut self, line: &str) -> Result<(), CampaignError> {
        let io = |operation: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |source| CampaignError::Io {
                path,
                operation,
                source,
            }
        };
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.file
            .write_all(framed.as_bytes())
            .map_err(io("append", &self.path))?;
        self.file.flush().map_err(io("flush", &self.path))?;
        if self.durable {
            self.file.sync_data().map_err(io("sync", &self.path))?;
        }
        Ok(())
    }

    /// Appends one cell under its key and flushes to the OS immediately
    /// (and to the device, in [durable](Self::set_durable) mode).
    pub fn append(&mut self, key: u64, record: &CellRecord) -> Result<(), CampaignError> {
        self.append_line(&format!("{{\"key\":{key},{}}}", record.json_fields()))
    }

    /// Loads a journal into a key → record map for `--resume`.
    ///
    /// A final line that does not parse is treated as torn by the crash
    /// that interrupted the campaign and ignored; a malformed line
    /// anywhere else is [`CampaignError::Corrupt`].
    pub fn load(path: &Path) -> Result<HashMap<u64, CellRecord>, CampaignError> {
        let file = std::fs::File::open(path).map_err(|source| CampaignError::Io {
            path: path.to_path_buf(),
            operation: "read",
            source,
        })?;
        let mut lines = Vec::new();
        for (idx, line) in std::io::BufReader::new(file).lines().enumerate() {
            let line = line.map_err(|source| CampaignError::Io {
                path: path.to_path_buf(),
                operation: "read",
                source,
            })?;
            lines.push((idx + 1, line));
        }
        let mut map = HashMap::new();
        let last = lines.len();
        for (lineno, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            match parse_journal_line(&line) {
                Some((key, record)) => {
                    map.insert(key, record);
                }
                None if lineno == last => {
                    // Torn tail: the crash arrived mid-append. The cell
                    // simply reruns on resume.
                }
                None => {
                    return Err(CampaignError::Corrupt {
                        path: path.to_path_buf(),
                        line: lineno,
                        detail: "unparseable journal entry".to_string(),
                    });
                }
            }
        }
        Ok(map)
    }
}

/// Extracts `"field":` string values from a flat JSON object written by
/// [`CellRecord::json_fields`] (only escapes [`json_escape`] produces).
pub(crate) fn json_str_field(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Extracts `"field":<number>` values from a flat JSON object.
pub(crate) fn json_num_field(line: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn parse_journal_line(line: &str) -> Option<(u64, CellRecord)> {
    if !line.starts_with("{\"key\":") || !line.ends_with('}') {
        return None;
    }
    let key = json_num_field(line, "key")?;
    let status = CellStatus::from_name(&json_str_field(line, "status")?)?;
    Some((
        key,
        CellRecord {
            kernel: json_str_field(line, "kernel")?,
            arch: json_str_field(line, "arch")?,
            status,
            ii: u32::try_from(json_num_field(line, "ii")?).ok()?,
            copies: usize::try_from(json_num_field(line, "copies")?).ok()?,
            max_registers: usize::try_from(json_num_field(line, "max_registers")?).ok()?,
            attempts: json_num_field(line, "attempts")?,
            detail: json_str_field(line, "detail")?,
        },
    ))
}

/// Result of [`run_campaign`].
#[derive(Debug)]
pub struct CampaignResult {
    /// One record per (kernel, architecture) cell, kernel-major in the
    /// order given, architecture-minor in the order given.
    pub records: Vec<CellRecord>,
    /// How many cells were satisfied from the resume map instead of
    /// being recomputed.
    pub resumed: usize,
}

impl CampaignResult {
    /// Whether every cell ended `Ok`.
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.status == CellStatus::Ok)
    }

    /// Count of cells with the given status.
    pub fn count(&self, status: CellStatus) -> usize {
        self.records.iter().filter(|r| r.status == status).count()
    }
}

/// Runs a campaign over `kernels` × `archs` with per-cell isolation.
///
/// Each cell schedules under a fresh [`StepBudget`] of `step_limit`
/// placement attempts and is recorded as `Ok`, `Failed`, or `TimedOut` —
/// never aborting the rest of the grid. Cells found in `resume` (keyed by
/// [`cell_key`]) are reused verbatim and **not** re-journaled; newly
/// computed cells are appended to `journal` (when given) and flushed
/// before the next cell starts.
pub fn run_campaign(
    kernels: &[(&str, &Kernel)],
    archs: &[Architecture],
    config: &SchedulerConfig,
    step_limit: u64,
    journal: Option<&mut Journal>,
    resume: &HashMap<u64, CellRecord>,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_jobs(kernels, archs, config, step_limit, journal, resume, 1)
}

/// [`run_campaign`] on up to `jobs` worker threads.
///
/// Cells are evaluated through [`crate::pool::run_indexed`]: workers
/// claim cells dynamically, but the records come back in the same
/// kernel-major order as the sequential run and journal appends happen
/// only on the calling thread, so both the report and the
/// crash-consistency guarantees are identical for every `jobs` — a
/// parallel campaign's [`campaign_json`] is byte-for-byte the
/// single-threaded one.
pub fn run_campaign_jobs(
    kernels: &[(&str, &Kernel)],
    archs: &[Architecture],
    config: &SchedulerConfig,
    step_limit: u64,
    mut journal: Option<&mut Journal>,
    resume: &HashMap<u64, CellRecord>,
    jobs: usize,
) -> Result<CampaignResult, CampaignError> {
    let fingerprint = config_fingerprint(config, step_limit);
    let mut items: Vec<(&str, &Kernel, &Architecture, u64)> =
        Vec::with_capacity(kernels.len() * archs.len());
    for &(name, kernel) in kernels {
        for arch in archs {
            items.push((
                name,
                kernel,
                arch,
                cell_key(name, arch.name(), &fingerprint),
            ));
        }
    }
    let mut resumed = 0usize;
    let results = crate::pool::run_indexed(
        &items,
        jobs,
        |_, &(name, kernel, arch, key)| match resume.get(&key) {
            Some(done) => (false, key, done.clone()),
            None => (true, key, run_cell(name, kernel, arch, config, step_limit)),
        },
        |_, (fresh, key, record)| {
            if *fresh {
                if let Some(j) = journal.as_deref_mut() {
                    j.append(*key, record)?;
                }
            } else {
                resumed += 1;
            }
            Ok(())
        },
    )?;
    Ok(CampaignResult {
        records: results.into_iter().map(|(_, _, r)| r).collect(),
        resumed,
    })
}

fn run_cell(
    name: &str,
    kernel: &Kernel,
    arch: &Architecture,
    config: &SchedulerConfig,
    step_limit: u64,
) -> CellRecord {
    let budget = StepBudget::new(step_limit);
    let mut record = CellRecord {
        kernel: name.to_string(),
        arch: arch.name().to_string(),
        status: CellStatus::Failed,
        ii: 0,
        copies: 0,
        max_registers: 0,
        attempts: 0,
        detail: String::new(),
    };
    match schedule_kernel_budgeted(arch, kernel, config.clone(), &budget) {
        Ok(schedule) => match validate::validate(arch, kernel, &schedule) {
            Ok(()) => {
                record.status = CellStatus::Ok;
                record.ii = schedule.ii().unwrap_or(1);
                record.copies = schedule.num_copies();
                record.max_registers = regalloc::analyze(arch, kernel, &schedule).max_required();
            }
            Err(violations) => {
                record.detail = format!(
                    "invalid schedule: {}",
                    violations
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; ")
                );
            }
        },
        Err(SchedError::DeadlineExceeded { .. } | SchedError::Cancelled { .. }) => {
            record.status = CellStatus::TimedOut;
            record.detail = format!("step limit {step_limit} exhausted");
        }
        Err(e) => {
            record.detail = e.to_string();
        }
    }
    record.attempts = budget.spent();
    record
}

/// Renders the campaign as one deterministic JSON document. The text is
/// a pure function of the records, so a resumed campaign whose records
/// match the uninterrupted run renders byte-for-byte identically.
pub fn campaign_json(records: &[CellRecord]) -> String {
    let mut s = String::from("{\"campaign\":{\"cells\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('{');
        s.push_str(&r.json_fields());
        s.push('}');
    }
    let count = |status: CellStatus| records.iter().filter(|r| r.status == status).count();
    s.push_str(&format!(
        "],\"summary\":{{\"total\":{},\"ok\":{},\"failed\":{},\"timed_out\":{},\"skipped\":{}}}}}}}",
        records.len(),
        count(CellStatus::Ok),
        count(CellStatus::Failed),
        count(CellStatus::TimedOut),
        count(CellStatus::Skipped),
    ));
    s
}

/// Rebuilds a figure-ready [`Grid`] from campaign records: rows are the
/// kernels whose every cell is `Ok` (speedups need the full row), in
/// record order. Scheduler statistics and metrics are not journaled, so
/// the rebuilt cells carry defaults for those fields — enough for the
/// Figure 28/29 speedup renderers, which only read `ii`.
pub fn grid_from_records(records: &[CellRecord], archs: &[String]) -> Grid {
    let mut rows: Vec<Row> = Vec::new();
    let mut order: Vec<String> = Vec::new();
    let mut by_kernel: HashMap<String, Vec<&CellRecord>> = HashMap::new();
    for r in records {
        if !by_kernel.contains_key(&r.kernel) {
            order.push(r.kernel.clone());
        }
        by_kernel.entry(r.kernel.clone()).or_default().push(r);
    }
    for kernel in order {
        let Some(cells) = by_kernel.get(&kernel) else {
            continue;
        };
        let mut row_cells = Vec::with_capacity(archs.len());
        for arch in archs {
            match cells
                .iter()
                .find(|r| &r.arch == arch && r.status == CellStatus::Ok)
            {
                Some(r) => row_cells.push(Cell {
                    arch: arch.clone(),
                    ii: r.ii.max(1),
                    copies: r.copies,
                    stats: Default::default(),
                    validated: true,
                    simulated: None,
                    max_registers: r.max_registers,
                    metrics: Default::default(),
                }),
                None => break,
            }
        }
        if row_cells.len() == archs.len() {
            rows.push(Row {
                kernel,
                cells: row_cells,
            });
        }
    }
    Grid {
        archs: archs.to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_machine::imagine;

    fn record(kernel: &str, arch: &str, status: CellStatus, ii: u32) -> CellRecord {
        CellRecord {
            kernel: kernel.to_string(),
            arch: arch.to_string(),
            status,
            ii,
            copies: 2,
            max_registers: 7,
            attempts: 41,
            detail: if status == CellStatus::Ok {
                String::new()
            } else {
                "deliberate \"detail\"\nwith escapes".to_string()
            },
        }
    }

    #[test]
    fn journal_round_trips_records() {
        let dir = std::env::temp_dir().join(format!("csched-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let a = record("Conv", "central", CellStatus::Ok, 11);
        let b = record("FFT", "clustered-2", CellStatus::Failed, 0);
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(cell_key("Conv", "central", "fp"), &a).unwrap();
            j.append(cell_key("FFT", "clustered-2", "fp"), &b).unwrap();
        }
        let map = Journal::load(&path).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map[&cell_key("Conv", "central", "fp")], a);
        assert_eq!(map[&cell_key("FFT", "clustered-2", "fp")], b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_but_interior_corruption_is_typed() {
        let dir = std::env::temp_dir().join(format!("csched-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        let a = record("Conv", "central", CellStatus::Ok, 11);
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(1, &a).unwrap();
        }
        // Simulate a crash mid-append: a torn, unterminated final line.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"key\":2,\"kernel\":\"FF").unwrap();
        }
        let map = Journal::load(&path).unwrap();
        assert_eq!(map.len(), 1, "torn tail must be ignored");

        // Reopening for append repairs the torn tail, so the next record
        // never welds onto the fragment.
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(3, &record("FIR", "central", CellStatus::Ok, 5))
                .unwrap();
        }
        let map = Journal::load(&path).unwrap();
        assert_eq!(map.len(), 2);
        assert!(map.contains_key(&1) && map.contains_key(&3));

        // Genuine interior corruption is a typed error, not silent loss.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "not json at all").unwrap();
            writeln!(
                f,
                "{{\"key\":4,{}}}",
                record("DCT", "central", CellStatus::Ok, 9).json_fields()
            )
            .unwrap();
        }
        match Journal::load(&path) {
            Err(CampaignError::Corrupt { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_sync_mode_toggles_and_round_trips() {
        let dir = std::env::temp_dir().join(format!("csched-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("durable.jsonl");
        let _ = std::fs::remove_file(&path);
        let a = record("Conv", "central", CellStatus::Ok, 11);
        let b = record("FFT", "central", CellStatus::Ok, 7);
        {
            // Start durable, then toggle off mid-journal: both appends
            // must land, bytes identical to the flush-only journal.
            let mut j = Journal::open_durable(&path).unwrap();
            assert!(j.is_durable());
            j.append(1, &a).unwrap();
            j.set_durable(false);
            assert!(!j.is_durable());
            j.append(2, &b).unwrap();
        }
        let map = Journal::load(&path).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map[&1], a);
        assert_eq!(map[&2], b);
        // A plain journal of the same records is byte-identical: durable
        // mode changes when bytes reach the device, never what they are.
        let plain = dir.join("plain.jsonl");
        let _ = std::fs::remove_file(&plain);
        {
            let mut j = Journal::open(&plain).unwrap();
            assert!(!j.is_durable());
            j.append(1, &a).unwrap();
            j.append(2, &b).unwrap();
        }
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&plain).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&plain).unwrap();
    }

    #[test]
    fn missing_parent_directory_is_a_typed_unwritable_error() {
        let dir = std::env::temp_dir().join(format!(
            "csched-journal-missing-{}/no/such/dir",
            std::process::id()
        ));
        let path = dir.join("j.jsonl");
        match Journal::open(&path) {
            Err(CampaignError::Unwritable { path: p, detail }) => {
                assert_eq!(p, path);
                assert!(detail.contains("does not exist"), "{detail}");
                assert!(detail.contains("no/such/dir"), "{detail}");
            }
            other => panic!("expected Unwritable, got {other:?}"),
        }
        // The error's Display names the path — no bare I/O strings.
        let err = Journal::open(&path).unwrap_err();
        assert!(err.to_string().contains("j.jsonl"), "{err}");
    }

    #[cfg(unix)]
    #[test]
    fn read_only_directory_is_a_typed_unwritable_error() {
        use std::os::unix::fs::PermissionsExt as _;
        let dir = std::env::temp_dir().join(format!("csched-journal-ro-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut perms = std::fs::metadata(&dir).unwrap().permissions();
        perms.set_mode(0o555);
        std::fs::set_permissions(&dir, perms.clone()).unwrap();
        let path = dir.join("j.jsonl");
        let result = Journal::open(&path);
        // Restore before asserting so a failure doesn't leave a
        // read-only temp directory behind.
        perms.set_mode(0o755);
        std::fs::set_permissions(&dir, perms).unwrap();
        // Root (some CI containers) ignores directory permission bits;
        // everyone else must get the typed error with the path.
        match result {
            Err(CampaignError::Unwritable { path: p, detail }) => {
                assert_eq!(p, path);
                assert!(detail.contains("permission denied"), "{detail}");
            }
            Ok(_) => {} // running as root: the open legitimately succeeds
            other => panic!("expected Unwritable, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_key_separates_kernels_archs_and_configs() {
        let fp1 = config_fingerprint(&SchedulerConfig::default(), 1000);
        let fp2 = config_fingerprint(&SchedulerConfig::default(), 2000);
        assert_ne!(fp1, fp2);
        assert_ne!(cell_key("A", "x", &fp1), cell_key("A", "y", &fp1));
        assert_ne!(cell_key("A", "x", &fp1), cell_key("B", "x", &fp1));
        assert_ne!(cell_key("A", "x", &fp1), cell_key("A", "x", &fp2));
        // The separator keeps ("AB","C") distinct from ("A","BC").
        assert_ne!(cell_key("AB", "C", &fp1), cell_key("A", "BC", &fp1));
    }

    #[test]
    fn campaign_isolates_failures_and_reports_them() {
        let w = csched_kernels::by_name("Merge").unwrap();
        let kernels: Vec<(&str, &Kernel)> = vec![("Merge", &w.kernel)];
        let archs = [imagine::central(), imagine::clustered(2)];
        // A starvation budget times every cell out...
        let starved = run_campaign(
            &kernels,
            &archs,
            &SchedulerConfig::default(),
            2,
            None,
            &HashMap::new(),
        )
        .unwrap();
        assert_eq!(starved.count(CellStatus::TimedOut), 2);
        assert!(!starved.all_ok());
        for r in &starved.records {
            assert!(r.attempts <= 2);
        }
        // ...while a real budget completes the same cells.
        let healthy = run_campaign(
            &kernels,
            &archs,
            &SchedulerConfig::default(),
            200_000,
            None,
            &HashMap::new(),
        )
        .unwrap();
        assert!(healthy.all_ok(), "{:?}", healthy.records);
        let grid = grid_from_records(
            &healthy.records,
            &archs
                .iter()
                .map(|a| a.name().to_string())
                .collect::<Vec<_>>(),
        );
        assert_eq!(grid.rows.len(), 1);
        assert!(grid.rows[0].speedup(1) > 0.0);
    }

    #[test]
    fn parallel_campaign_matches_sequential_byte_for_byte() {
        let merge = csched_kernels::by_name("Merge").unwrap();
        let sort = csched_kernels::by_name("Sort").unwrap();
        let kernels: Vec<(&str, &Kernel)> = vec![("Merge", &merge.kernel), ("Sort", &sort.kernel)];
        let archs = [imagine::central(), imagine::distributed()];
        let config = SchedulerConfig::default();
        let golden = run_campaign(&kernels, &archs, &config, 200_000, None, &HashMap::new())
            .map(|r| campaign_json(&r.records))
            .unwrap();
        for jobs in [2, 4] {
            let got = run_campaign_jobs(
                &kernels,
                &archs,
                &config,
                200_000,
                None,
                &HashMap::new(),
                jobs,
            )
            .map(|r| campaign_json(&r.records))
            .unwrap();
            assert_eq!(got, golden, "jobs={jobs}");
        }
    }
}
