//! The kernel × architecture evaluation grid behind Figures 28 and 29.
//!
//! For every Table 1 workload and every register-file organisation, the
//! grid schedules the kernel, validates the schedule, optionally executes
//! it on the cycle simulator against the scalar reference, and records the
//! loop initiation interval. Speedups follow the paper's definition:
//! "the inverse of the schedule length of that loop normalized to the
//! schedule length for the central register file architecture".

use csched_core::{
    regalloc, schedule_kernel, validate, SchedError, SchedStats, ScheduleMetrics, SchedulerConfig,
};
use csched_kernels::Workload;
use csched_machine::Architecture;

/// Result of scheduling one kernel on one architecture.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Architecture name.
    pub arch: String,
    /// Loop initiation interval (the paper's performance metric).
    pub ii: u32,
    /// Copy operations in the final schedule.
    pub copies: usize,
    /// Scheduler statistics.
    pub stats: SchedStats,
    /// Whether the independent validator accepted the schedule.
    pub validated: bool,
    /// Whether the cycle simulator reproduced the scalar reference
    /// (`None` if simulation was skipped).
    pub simulated: Option<bool>,
    /// Maximum register demand in any single file.
    pub max_registers: usize,
    /// Full schedule metrics (occupancy, copies per communication,
    /// placement effort) for this kernel × architecture cell.
    pub metrics: ScheduleMetrics,
}

/// Results of one kernel across all architectures.
#[derive(Clone, Debug)]
pub struct Row {
    /// Kernel name (Table 1).
    pub kernel: String,
    /// One cell per architecture, in the order given to [`run_grid`].
    pub cells: Vec<Cell>,
}

impl Row {
    /// Speedup of architecture index `i` relative to architecture index 0
    /// (the central organisation by convention).
    pub fn speedup(&self, i: usize) -> f64 {
        self.cells[0].ii as f64 / self.cells[i].ii as f64
    }
}

/// The whole grid.
#[derive(Clone, Debug)]
pub struct Grid {
    /// Architecture names, column order.
    pub archs: Vec<String>,
    /// One row per kernel.
    pub rows: Vec<Row>,
}

impl Grid {
    /// Geometric-mean speedup per architecture (Figure 29's bars).
    pub fn overall_speedups(&self) -> Vec<f64> {
        (0..self.archs.len())
            .map(|i| {
                let product: f64 = self.rows.iter().map(|r| r.speedup(i).ln()).sum();
                (product / self.rows.len() as f64).exp()
            })
            .collect()
    }

    /// Minimum kernel speedup per architecture (the paper quotes 0.91 for
    /// distributed, 0.56 for clustered).
    pub fn min_speedups(&self) -> Vec<f64> {
        (0..self.archs.len())
            .map(|i| {
                self.rows
                    .iter()
                    .map(|r| r.speedup(i))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    /// Number of kernels at parity (speedup ≥ threshold) per architecture.
    pub fn kernels_at_parity(&self, i: usize, threshold: f64) -> usize {
        self.rows
            .iter()
            .filter(|r| r.speedup(i) >= threshold)
            .count()
    }
}

/// Errors from the grid runner.
#[derive(Debug)]
pub enum GridError {
    /// Scheduling failed.
    Sched {
        /// Kernel name.
        kernel: String,
        /// Architecture name.
        arch: String,
        /// The scheduler error.
        error: SchedError,
    },
    /// The validator rejected a schedule.
    Invalid {
        /// Kernel name.
        kernel: String,
        /// Architecture name.
        arch: String,
        /// Validator findings.
        detail: String,
    },
    /// The simulator diverged from the scalar reference.
    Diverged {
        /// Kernel name.
        kernel: String,
        /// Architecture name.
        arch: String,
        /// Mismatch description.
        detail: String,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::Sched {
                kernel,
                arch,
                error,
            } => {
                write!(f, "{kernel} on {arch}: scheduling failed: {error}")
            }
            GridError::Invalid {
                kernel,
                arch,
                detail,
            } => {
                write!(f, "{kernel} on {arch}: invalid schedule: {detail}")
            }
            GridError::Diverged {
                kernel,
                arch,
                detail,
            } => {
                write!(f, "{kernel} on {arch}: simulation diverged: {detail}")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// Runs the grid.
///
/// # Errors
///
/// Fails fast on the first scheduling failure, validation failure or
/// simulator divergence — the evaluation is only meaningful when every
/// cell is correct.
pub fn run_grid(
    workloads: &[Workload],
    archs: &[Architecture],
    config: &SchedulerConfig,
    simulate: bool,
) -> Result<Grid, GridError> {
    let mut rows = Vec::with_capacity(workloads.len());
    for w in workloads {
        let mut cells = Vec::with_capacity(archs.len());
        for arch in archs {
            let schedule = schedule_kernel(arch, &w.kernel, config.clone()).map_err(|error| {
                GridError::Sched {
                    kernel: w.kernel.name().to_string(),
                    arch: arch.name().to_string(),
                    error,
                }
            })?;
            validate::validate(arch, &w.kernel, &schedule).map_err(|errors| {
                GridError::Invalid {
                    kernel: w.kernel.name().to_string(),
                    arch: arch.name().to_string(),
                    detail: errors
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; "),
                }
            })?;
            let simulated = if simulate {
                let mut mem = w.memory();
                let sim = csched_sim::execute(&w.kernel, &schedule, &mut mem, w.trip)
                    .map_err(|e| GridError::Diverged {
                        kernel: w.kernel.name().to_string(),
                        arch: arch.name().to_string(),
                        detail: e.to_string(),
                    })
                    .map(|_| ())
                    .and_then(|()| {
                        w.verify(&mem).map_err(|detail| GridError::Diverged {
                            kernel: w.kernel.name().to_string(),
                            arch: arch.name().to_string(),
                            detail,
                        })
                    });
                sim?;
                Some(true)
            } else {
                None
            };
            let pressure = regalloc::analyze(arch, &w.kernel, &schedule);
            let metrics = ScheduleMetrics::compute(arch, &w.kernel, &schedule);
            cells.push(Cell {
                arch: arch.name().to_string(),
                ii: schedule.ii().unwrap_or(1),
                copies: schedule.num_copies(),
                stats: schedule.stats(),
                validated: true,
                simulated,
                max_registers: pressure.max_required(),
                metrics,
            });
        }
        rows.push(Row {
            kernel: w.kernel.name().to_string(),
            cells,
        });
    }
    Ok(Grid {
        archs: archs.iter().map(|a| a.name().to_string()).collect(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_machine::imagine;

    #[test]
    fn small_grid_end_to_end_with_simulation() {
        let workloads: Vec<Workload> = ["Merge"]
            .iter()
            .map(|n| csched_kernels::by_name(n).expect("known kernel"))
            .collect();
        let archs = [imagine::central(), imagine::clustered(2)];
        let grid = run_grid(&workloads, &archs, &SchedulerConfig::default(), true)
            .expect("small grid runs");
        assert_eq!(grid.rows.len(), 1);
        assert_eq!(grid.rows[0].cells.len(), 2);
        for cell in &grid.rows[0].cells {
            assert!(cell.validated);
            assert_eq!(cell.simulated, Some(true));
            assert!(cell.ii >= 1);
            assert!(cell.max_registers > 0);
            assert_eq!(cell.metrics.ii, Some(cell.ii));
            assert_eq!(cell.metrics.copies, cell.copies);
        }
        // Merge is recurrence-bound: parity across these organisations.
        assert!((grid.rows[0].speedup(1) - 1.0).abs() < 1e-9);
        assert_eq!(grid.overall_speedups().len(), 2);
    }

    #[test]
    fn grid_errors_are_descriptive() {
        let e = GridError::Sched {
            kernel: "K".into(),
            arch: "A".into(),
            error: csched_core::SchedError::IiExhausted { mii: 1, max_ii: 4 },
        };
        assert!(e.to_string().contains("K on A"));
    }
}
