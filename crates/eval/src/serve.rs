//! `csched-serve` — a hardened, long-running scheduler service.
//!
//! The library turns one machine into a scheduling server: clients send
//! a kernel and a machine description in the existing textual wire
//! formats ([`csched_ir::text`], [`csched_machine::text`]) over TCP and
//! get back the scheduled initiation interval, copy count, and register
//! demand. Finished schedules are remembered in a **content-addressed
//! cache** keyed by (canonical kernel text hash ×
//! [`Architecture::fingerprint`](csched_machine::Architecture::fingerprint)
//! × scheduler-configuration fingerprint), persisted in a checksummed
//! journal, so a warm request skips scheduling entirely.
//!
//! Every edge is hardened:
//!
//! - **Admission control.** Connections are admitted to a *bounded*
//!   queue in front of the deterministic worker pool
//!   ([`crate::pool::Service`]). When the queue is full the acceptor
//!   sheds the connection with a typed `ERR overload` response in
//!   microseconds — an overloaded server answers, it never hangs, and
//!   admitted work is never abandoned.
//! - **Per-request deadlines.** Each request schedules under a
//!   [`StepBudget`] of placement attempts (deterministic), optionally
//!   fenced by a wall-clock deadline enforced through a shared
//!   [`Watchdog`] cancelling the request's
//!   [`CancelToken`]. Socket reads and writes
//!   carry timeouts, so a stalled client cannot pin a worker.
//! - **Graceful degradation.** Scheduling runs the anytime ladder
//!   ([`csched_core::schedule_kernel_anytime`]): when a deadline
//!   expires mid-ladder the response is the best relaxed-II schedule
//!   completed so far, flagged `degraded=1`, instead of an error.
//! - **Corruption quarantine.** The cache journal checksums every
//!   entry. A torn final line (crash mid-append) is repaired silently;
//!   a bit-flipped interior entry is *quarantined* on load — serving
//!   continues, the key misses, is re-scheduled on its next request,
//!   and the fresh entry is re-journaled (last record wins on the next
//!   load, lifting the quarantine).
//! - **Crash consistency.** Entries are journaled (flushed, and
//!   `fsync`ed in durable mode) before the response is sent, so a
//!   `kill -9` mid-request loses only the requests in flight: a
//!   restarted server answers every previously cached key byte-for-byte
//!   identically.
//! - **Slowloris defense.** The whole request-read runs under one
//!   per-phase wall deadline ([`ServeConfig::read_phase_ms`]): header
//!   lines and body chunks are read piecewise with the deadline checked
//!   and the socket timeout re-armed between reads, so a client
//!   dripping one byte per tick is cut off with `ERR malformed` when
//!   the phase budget expires — a per-call socket timeout alone can
//!   never fire against such a client.
//! - **Journal compaction.** When the journal grows past
//!   [`CompactionPolicy`] thresholds it is rewritten last-record-wins
//!   into a temp file and atomically renamed over the original;
//!   over-cap caches evict their oldest-inserted entries first.
//!   Compaction physically drops quarantined lines, so a heal is
//!   complete the moment a compaction lands. `compactions`,
//!   `evicted_entries`, `journal_bytes`, and `degraded_writes` are all
//!   surfaced in `STATS`.
//! - **Degraded serve-from-memory.** When the disk fills (`ENOSPC`)
//!   mid-journal-append, the cache latches into a degraded mode
//!   (mirroring `JsonlWriterSink`): scheduling and serving continue
//!   from memory, writes stop, and the latch is visible in `STATS` as
//!   `write_degraded` — the service degrades to non-persistent instead
//!   of dying.
//! - **Client-side retries.** [`client_request_retry`] classifies
//!   responses ([`response_complete`]/[`response_retryable`]) and
//!   retries transient failures under a seeded full-jitter exponential
//!   backoff ([`RetryConfig`]), returning a [`RetryReport`] of every
//!   attempt. Retries are idempotent by construction: the server
//!   journals before responding, so a retried key at worst hits the
//!   cache.
//!
//! ## Wire protocol
//!
//! One request per connection, newline-framed headers with byte-counted
//! bodies:
//!
//! ```text
//! SCHED [limit=<attempts>] [wall_ms=<ms>]
//! KERNEL <len>
//! <len bytes of kernel text>
//! ARCH <len>
//! <len bytes of machine text>
//! END
//! ```
//!
//! The server replies `CACHE hit|miss`, then either
//! `OK ii=<n> copies=<n> max_registers=<n> attempts=<n> degraded=<0|1>`
//! or `ERR <kind> <detail>` with `kind` one of `overload`, `malformed`,
//! `deadline`, `sched`, `internal` — then closes the connection.
//! `STATS` on a connection of its own returns one JSON line of
//! counters.
//!
//! Three observability verbs ride the same framing
//! (see [`crate::telemetry`]):
//!
//! - `METRICS` returns one JSON line (schema-versioned counts,
//!   deterministic log-bucketed latency/attempts histograms per
//!   outcome, the recent-request span ring) followed by a
//!   Prometheus-style text exposition;
//! - `TRACE [limit=] [wall_ms=] [events=<cap>] [full=1]` frames exactly
//!   like `SCHED` but *bypasses the cache*, schedules with a
//!   [`TraceSink`](csched_core::trace::TraceSink) attached, and streams
//!   the decision-level trace events back as JSONL (each line gains a
//!   leading `"req"` key), then a
//!   `TRACE end events=<sent> total=<seen> truncated=<0|1>` summary,
//!   then the usual `OK`/`ERR` line. The event cap (client-requested,
//!   clamped to [`ServeConfig::trace_event_cap`]) bounds what a worker
//!   will ever write, so a slow trace reader cannot pin a worker any
//!   longer than an ordinary slow client;
//! - every `SCHED`/`TRACE` request is recorded as a
//!   [`RequestSpan`] with per-stage
//!   timings — including shed connections (recorded by the acceptor),
//!   watchdog deadline expiries, and requests served during the ENOSPC
//!   degraded latch — unless [`ServeConfig::telemetry`] is off, in
//!   which case the schedule path runs sink-free and records nothing.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csched_core::{
    explain, regalloc, schedule_kernel_anytime, schedule_kernel_anytime_traced, validate,
    CancelToken, RetryPolicy, SchedulerConfig, StepBudget, Watchdog,
};
use csched_ir::Kernel;

use crate::campaign::{cell_key, config_fingerprint, json_num_field, CampaignError, Journal};
use crate::pool::{Rejected, Service};
use crate::telemetry::{
    elapsed_us, CacheDisposition, Outcome as SpanOutcome, RequestSpan, Telemetry, TraceCapture,
    METRICS_SCHEMA,
};

/// Typed failures of the serve layer (distinct from
/// [`csched_core::SchedError`]: these
/// are service problems — sockets, cache storage, protocol — not
/// scheduling ones).
#[derive(Debug)]
pub enum ServeError {
    /// Binding or accepting on the listen address failed.
    Bind {
        /// The address that could not be served.
        addr: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A socket read/write failed (client side or server side).
    Io {
        /// What was being done.
        context: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The persistent cache store failed (journal I/O).
    Cache(CampaignError),
    /// A response (client side) or request (server side) violated the
    /// wire protocol.
    Protocol {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot serve on {addr}: {source}"),
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Cache(e) => write!(f, "schedule cache: {e}"),
            ServeError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } | ServeError::Io { source, .. } => Some(source),
            ServeError::Cache(e) => Some(e),
            ServeError::Protocol { .. } => None,
        }
    }
}

/// Server tunables. `Default` is sized for tests and smoke runs; a real
/// deployment raises `jobs`/`queue_cap`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads scheduling requests.
    pub jobs: usize,
    /// Admission-queue capacity; connections beyond `jobs + queue_cap`
    /// in flight are shed with `ERR overload`.
    pub queue_cap: usize,
    /// Default per-request placement-attempt budget.
    pub step_limit: u64,
    /// Hard cap on client-requested budgets (`limit=` is clamped here).
    pub max_step_limit: u64,
    /// Server-wide wall-clock deadline per request, in milliseconds
    /// (`None` = placement-attempt budget only).
    pub wall_ms: Option<u64>,
    /// Socket read/write timeout per *call* — a stalled client cannot
    /// pin a worker in one blocking read longer than this.
    pub io_timeout: Duration,
    /// Wall budget for reading one *whole* request (headers and bodies
    /// together). A per-call timeout alone cannot stop a slowloris
    /// client dripping one byte per tick — every individual read
    /// succeeds — so the read phase also carries this total deadline,
    /// checked between reads, with the remaining time re-armed as the
    /// socket timeout so the worker is freed within the budget.
    pub read_phase_ms: u64,
    /// Maximum bytes accepted for one kernel or machine body.
    pub max_request_bytes: usize,
    /// Persistent cache journal path (`None` = in-memory cache only).
    pub cache_path: Option<PathBuf>,
    /// `fsync` each cache append (survives power loss, not just
    /// `kill -9`).
    pub durable: bool,
    /// Journal compaction thresholds (see [`CompactionPolicy`]).
    pub compaction: CompactionPolicy,
    /// Scheduler configuration every request runs under (part of the
    /// cache key).
    pub scheduler: SchedulerConfig,
    /// Record per-request telemetry spans and histograms. When off, the
    /// schedule path runs with no trace sink attached and records
    /// nothing — `METRICS`/`TRACE` still answer, over empty
    /// aggregates.
    pub telemetry: bool,
    /// Capacity of the recent-request span ring.
    pub span_ring: usize,
    /// Hard cap on trace events streamed per `TRACE` request
    /// (client-requested `events=` is clamped here).
    pub trace_event_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            jobs: 4,
            queue_cap: 16,
            step_limit: 200_000,
            max_step_limit: 1 << 22,
            wall_ms: None,
            io_timeout: Duration::from_millis(5_000),
            read_phase_ms: 10_000,
            max_request_bytes: 1 << 20,
            cache_path: None,
            durable: false,
            compaction: CompactionPolicy::default(),
            scheduler: SchedulerConfig::default(),
            telemetry: true,
            span_ring: 64,
            trace_event_cap: 4096,
        }
    }
}

/// When and how far the schedule-cache journal is compacted.
///
/// An append-only journal grows without bound: every re-scheduled key,
/// every quarantine heal, and every corrupt line stays on disk forever.
/// Compaction rewrites the journal *last-record-wins* — one checksummed
/// line per live entry — into a temp file that is atomically renamed
/// over the journal, so a crash at any instant leaves either the old or
/// the new journal, never a mix. Corrupt lines and superseded records
/// are dropped by construction; quarantined keys simply vanish (their
/// payload was never trustworthy) and miss until re-scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact when the journal exceeds this many bytes *and* holds at
    /// least one dead line (a rewrite that cannot shrink is pointless).
    pub max_journal_bytes: u64,
    /// Hard cap on live cache entries. When an insert pushes the map
    /// past this, compaction also *evicts* the oldest-inserted entries
    /// down to 3/4 of the cap (the slack stops a full cache from
    /// rewriting the journal on every insert).
    pub max_entries: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_journal_bytes: 1 << 22,
            max_entries: 1 << 16,
        }
    }
}

/// One cached scheduling outcome — everything a response needs, nothing
/// machine-specific, so a warm response is a pure function of the entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// Initiation interval (0 for straight-line kernels).
    pub ii: u32,
    /// Copy operations inserted.
    pub copies: u64,
    /// Maximum register demand in any file.
    pub max_registers: u64,
    /// Placement attempts the cold schedule charged.
    pub attempts: u64,
    /// Whether the result is degraded (deadline expired mid-ladder).
    pub degraded: bool,
    /// The placement-attempt budget the entry was computed under; a
    /// degraded entry is only served warm to requests with an equal or
    /// smaller budget (a larger budget deserves a fresh, better try).
    pub limit: u64,
}

impl CacheEntry {
    /// The checksummed journal line body (sans `sum`).
    fn body(&self, key: u64) -> String {
        format!(
            "\"key\":{key},\"ii\":{},\"copies\":{},\"max_registers\":{},\"attempts\":{},\
             \"degraded\":{},\"limit\":{}",
            self.ii,
            self.copies,
            self.max_registers,
            self.attempts,
            u8::from(self.degraded),
            self.limit,
        )
    }

    /// Renders the full journal line: `{<body>,"sum":<fnv1a(body)>}`.
    fn to_line(&self, key: u64) -> String {
        let body = self.body(key);
        format!("{{{body},\"sum\":{}}}", fnv1a(body.as_bytes()))
    }

    /// Parses and checksum-verifies one journal line.
    fn parse_line(line: &str) -> Option<(u64, CacheEntry)> {
        let rest = line.strip_prefix('{')?.strip_suffix('}')?;
        let sum_at = rest.rfind(",\"sum\":")?;
        let (body, sum_text) = rest.split_at(sum_at);
        let sum: u64 = sum_text.strip_prefix(",\"sum\":")?.parse().ok()?;
        if fnv1a(body.as_bytes()) != sum {
            return None;
        }
        let entry = CacheEntry {
            ii: u32::try_from(json_num_field(body, "ii")?).ok()?,
            copies: json_num_field(body, "copies")?,
            max_registers: json_num_field(body, "max_registers")?,
            attempts: json_num_field(body, "attempts")?,
            degraded: json_num_field(body, "degraded")? != 0,
            limit: json_num_field(body, "limit")?,
        };
        Some((json_num_field(body, "key")?, entry))
    }
}

/// FNV-1a over raw bytes (the cache line checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content hash of a kernel: FNV-1a over its *canonical* textual
/// form, so semantically identical requests (same kernel, different
/// whitespace or comments) share one cache slot.
pub fn kernel_hash(kernel: &Kernel) -> u64 {
    fnv1a(csched_ir::text::print(kernel).as_bytes())
}

/// The content-addressed cache key of one request:
/// (kernel text hash × architecture structural fingerprint × scheduler
/// configuration fingerprint).
pub fn cache_key(kernel_hash: u64, arch_fingerprint: u64, config_fp: &str) -> u64 {
    cell_key(
        &format!("{kernel_hash:016x}"),
        &format!("{arch_fingerprint:016x}"),
        config_fp,
    )
}

/// What [`ScheduleCache::open`] found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheLoadReport {
    /// Entries loaded clean (checksum verified).
    pub entries: usize,
    /// Keys quarantined: their newest journal line was corrupt.
    pub quarantined: usize,
    /// Corrupt (checksum-failing or unparseable) lines seen, including
    /// ones whose key could not be recovered.
    pub corrupt_lines: usize,
    /// Bytes of torn tail (crash mid-append) repaired on open.
    pub repaired_bytes: u64,
}

/// The content-addressed schedule cache: an in-memory map backed by a
/// checksummed, append-only journal (reusing the campaign
/// [`Journal`]'s open/repair/flush machinery), compacted last-record-wins
/// when the journal outgrows its [`CompactionPolicy`], and latched into a
/// degraded serve-from-memory mode when the disk fills (mirroring
/// [`csched_core::trace::JsonlWriterSink`]'s ENOSPC latch: the first full
/// disk stops all journaling instead of hammering the device on every
/// request).
#[derive(Debug)]
pub struct ScheduleCache {
    map: HashMap<u64, CacheEntry>,
    /// Keys whose newest journal line failed its checksum: known to
    /// exist but untrusted, so they miss until re-scheduled.
    quarantined: HashSet<u64>,
    /// Insertion sequence per key — the eviction order (oldest first).
    touch: HashMap<u64, u64>,
    next_seq: u64,
    journal: Option<Journal>,
    policy: CompactionPolicy,
    corrupt_lines: usize,
    repaired_bytes: u64,
    /// Journal size tracking for the byte-threshold compaction trigger.
    journal_bytes: u64,
    journal_lines: u64,
    /// Monotonic counters surfaced through `STATS`.
    compactions: u64,
    evicted_entries: u64,
    degraded_writes: u64,
    /// Latched on the first ENOSPC: all further inserts stay in memory.
    degraded: bool,
}

impl ScheduleCache {
    /// Opens (or creates) the cache with the default
    /// [`CompactionPolicy`]. Corrupt entries are quarantined and
    /// reported, never fatal: a served cache heals by re-scheduling.
    ///
    /// # Errors
    ///
    /// Only journal I/O ([`CampaignError::Io`] /
    /// [`CampaignError::Unwritable`]); corruption is *not* an error.
    pub fn open(
        path: Option<&Path>,
        durable: bool,
    ) -> Result<(ScheduleCache, CacheLoadReport), CampaignError> {
        Self::open_with(path, durable, CompactionPolicy::default())
    }

    /// [`open`](Self::open) with an explicit compaction policy.
    ///
    /// # Errors
    ///
    /// Only journal I/O ([`CampaignError::Io`] /
    /// [`CampaignError::Unwritable`]); corruption is *not* an error.
    pub fn open_with(
        path: Option<&Path>,
        durable: bool,
        policy: CompactionPolicy,
    ) -> Result<(ScheduleCache, CacheLoadReport), CampaignError> {
        let mut cache = ScheduleCache {
            map: HashMap::new(),
            quarantined: HashSet::new(),
            touch: HashMap::new(),
            next_seq: 0,
            journal: None,
            policy,
            corrupt_lines: 0,
            repaired_bytes: 0,
            journal_bytes: 0,
            journal_lines: 0,
            compactions: 0,
            evicted_entries: 0,
            degraded_writes: 0,
            degraded: false,
        };
        let Some(path) = path else {
            return Ok((cache, CacheLoadReport::default()));
        };
        if path.exists() {
            // Read raw bytes, not a String: a single non-UTF-8 byte
            // (disk corruption) must cost one quarantined line, never
            // the whole cache.
            let bytes = std::fs::read(path).map_err(|source| CampaignError::Io {
                path: path.to_path_buf(),
                operation: "read",
                source,
            })?;
            let ends_with_newline = bytes.last() == Some(&b'\n');
            let lines: Vec<std::borrow::Cow<'_, str>> = bytes
                .split(|b| *b == b'\n')
                .map(String::from_utf8_lossy)
                .filter(|l| !l.trim().is_empty())
                .collect();
            for (idx, line) in lines.iter().enumerate() {
                let line = line.strip_suffix('\r').unwrap_or(line);
                cache.journal_lines += 1;
                match CacheEntry::parse_line(line) {
                    Some((key, entry)) => {
                        // Last record wins: a re-journaled entry lifts an
                        // earlier quarantine of the same key.
                        cache.map.insert(key, entry);
                        cache.quarantined.remove(&key);
                        let seq = cache.next_seq;
                        cache.next_seq += 1;
                        cache.touch.insert(key, seq);
                    }
                    None if idx == lines.len() - 1 && !ends_with_newline => {
                        // Torn tail: the crash arrived mid-append; the
                        // journal open below truncates it away.
                        cache.journal_lines -= 1;
                    }
                    None => {
                        cache.corrupt_lines += 1;
                        // Quarantine the key if it is still legible, so
                        // the bit-flipped payload is never served.
                        if let Some(key) = json_num_field(line, "key") {
                            cache.map.remove(&key);
                            cache.touch.remove(&key);
                            cache.quarantined.insert(key);
                        }
                    }
                }
            }
        }
        let mut journal = if durable {
            Journal::open_durable(path)?
        } else {
            Journal::open(path)?
        };
        journal.set_durable(durable);
        cache.repaired_bytes = journal.repaired_bytes();
        cache.journal_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        cache.journal = Some(journal);
        let report = CacheLoadReport {
            entries: cache.map.len(),
            quarantined: cache.quarantined.len(),
            corrupt_lines: cache.corrupt_lines,
            repaired_bytes: cache.repaired_bytes,
        };
        Ok((cache, report))
    }

    /// Looks up a warm entry usable for a request budgeted at `limit`.
    ///
    /// Quarantined keys always miss. A degraded entry is served only to
    /// an equal-or-smaller budget; a request with more budget than the
    /// degraded entry had deserves a fresh attempt at a better answer.
    pub fn lookup(&self, key: u64, limit: u64) -> Option<&CacheEntry> {
        if self.quarantined.contains(&key) {
            return None;
        }
        self.map
            .get(&key)
            .filter(|e| !e.degraded || e.limit >= limit)
    }

    /// Inserts and journals an entry (journaled *before* it is visible,
    /// so a response is only ever sent for a durably recorded entry).
    /// Re-inserting a quarantined key lifts the quarantine. May trigger
    /// a [compaction](CompactionPolicy) afterwards.
    ///
    /// A full disk (ENOSPC) does **not** fail the insert: the cache
    /// latches into degraded serve-from-memory mode — the entry lands in
    /// the map, `degraded_writes` counts it, and no further journal
    /// writes are attempted until the process restarts. Losing
    /// crash-durability beats refusing to serve.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] on journal failures other than a full disk.
    pub fn insert(&mut self, key: u64, entry: CacheEntry) -> Result<(), CampaignError> {
        if self.journal.is_some() {
            if self.degraded {
                self.degraded_writes += 1;
            } else {
                let line = entry.to_line(key);
                // Borrow the journal only for the append so the latch
                // path below can mutate the rest of the cache.
                let appended = match self.journal.as_mut() {
                    Some(journal) => journal.append_line(&line),
                    None => Ok(()),
                };
                match appended {
                    Ok(()) => {
                        self.journal_bytes += line.len() as u64 + 1;
                        self.journal_lines += 1;
                    }
                    Err(e) if is_disk_full(&e) => {
                        self.degraded = true;
                        self.degraded_writes += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        self.quarantined.remove(&key);
        self.map.insert(key, entry);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.touch.insert(key, seq);
        self.maybe_compact()
    }

    /// Whether the journal currently deserves a compaction pass.
    fn wants_compaction(&self) -> bool {
        if self.journal.is_none() || self.degraded {
            return false;
        }
        let over_cap = self.map.len() > self.policy.max_entries;
        // The byte trigger only fires when a rewrite can actually
        // shrink the file (dead lines exist: superseded or corrupt).
        let oversized = self.journal_bytes > self.policy.max_journal_bytes
            && self.journal_lines > self.map.len() as u64;
        over_cap || oversized
    }

    fn maybe_compact(&mut self) -> Result<(), CampaignError> {
        if self.wants_compaction() {
            self.compact()
        } else {
            Ok(())
        }
    }

    /// Rewrites the journal last-record-wins (evicting down to the entry
    /// cap first): live entries stream into `<path>.compact`, the temp
    /// file is fsynced and atomically renamed over the journal, and the
    /// journal handle is reopened on the new file. A crash anywhere in
    /// between leaves either the complete old journal or the complete
    /// new one.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] on temp-file/rename failures — except a
    /// full disk, which latches degraded mode (the old journal stays in
    /// place and serving continues from memory).
    pub fn compact(&mut self) -> Result<(), CampaignError> {
        let Some(journal) = self.journal.take() else {
            return Ok(());
        };
        let path = journal.path().to_path_buf();
        let durable = journal.is_durable();
        drop(journal); // close the append handle before the rename dance

        // Evict oldest-inserted entries down to 3/4 of the cap.
        if self.map.len() > self.policy.max_entries {
            let target = (self.policy.max_entries - self.policy.max_entries / 4).max(1);
            let mut order: Vec<(u64, u64)> = self
                .map
                .keys()
                .map(|&k| (self.touch.get(&k).copied().unwrap_or(0), k))
                .collect();
            order.sort_unstable();
            let doomed = self.map.len().saturating_sub(target);
            for &(_, key) in order.iter().take(doomed) {
                self.map.remove(&key);
                self.touch.remove(&key);
                self.evicted_entries += 1;
            }
        }

        let mut failure = None;
        let mut rewrote = false;
        match self.write_compacted(&path, durable) {
            Ok(()) => {
                // The corrupt lines are gone from disk, so their keys no
                // longer need an in-memory quarantine: a missing key
                // misses exactly like a quarantined one.
                self.quarantined.clear();
                self.compactions += 1;
                rewrote = true;
            }
            Err(e) if is_disk_full(&e) => {
                // No room for the rewrite: keep serving from memory with
                // the old journal file intact on disk.
                self.degraded = true;
            }
            Err(e) => failure = Some(e),
        }
        // Always reopen the journal (the compacted file on success, the
        // untouched original otherwise) so the cache keeps journaling
        // even when this pass failed.
        let reopened = if durable {
            Journal::open_durable(&path)
        } else {
            Journal::open(&path)
        };
        match reopened {
            Ok(j) => {
                self.journal_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                if rewrote {
                    self.journal_lines = self.map.len() as u64;
                }
                self.journal = Some(j);
            }
            Err(e) if is_disk_full(&e) => {
                self.degraded = true;
            }
            Err(e) => {
                if failure.is_none() {
                    failure = Some(e);
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Streams the live entries (in insertion order) into a temp file and
    /// atomically renames it over `path`.
    fn write_compacted(&self, path: &Path, durable: bool) -> Result<(), CampaignError> {
        use std::io::Write as _;
        let io = |operation: &'static str| {
            let path = path.to_path_buf();
            move |source| CampaignError::Io {
                path,
                operation,
                source,
            }
        };
        let tmp = path.with_extension("compact");
        {
            let file = std::fs::File::create(&tmp).map_err(io("create temp"))?;
            let mut writer = std::io::BufWriter::new(file);
            let mut order: Vec<(u64, u64)> = self
                .map
                .keys()
                .map(|&k| (self.touch.get(&k).copied().unwrap_or(0), k))
                .collect();
            order.sort_unstable();
            for &(_, key) in &order {
                if let Some(entry) = self.map.get(&key) {
                    writeln!(writer, "{}", entry.to_line(key)).map_err(io("write temp"))?;
                }
            }
            writer.flush().map_err(io("flush temp"))?;
            // Sync before the rename regardless of durable mode: the
            // rename must never become visible ahead of the data.
            writer.get_ref().sync_data().map_err(io("sync temp"))?;
            let _ = durable; // durability of appends is re-armed on reopen
        }
        std::fs::rename(&tmp, path).map_err(io("rename"))
    }

    /// Cached entries currently servable.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Keys currently quarantined (corrupt on disk, awaiting
    /// re-scheduling).
    pub fn quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// Compactions performed since open.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Entries evicted (oldest-inserted first) by over-cap compactions.
    pub fn evicted_entries(&self) -> u64 {
        self.evicted_entries
    }

    /// Current journal size in bytes (0 for an in-memory cache).
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    /// Current journal line count, dead lines included.
    pub fn journal_lines(&self) -> u64 {
        self.journal_lines
    }

    /// Inserts that could not be journaled because the cache is latched
    /// in degraded (full-disk) mode.
    pub fn degraded_writes(&self) -> u64 {
        self.degraded_writes
    }

    /// Whether the ENOSPC latch has tripped (serving from memory only).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Test hook: trips the full-disk latch as if an append had just
    /// returned ENOSPC. Public (not `cfg(test)`) so integration tests
    /// and the soak harness can exercise degraded mode without an
    /// actual full device.
    pub fn latch_degraded_for_test(&mut self) {
        self.degraded = true;
    }
}

/// Whether a journal failure means the disk is full (ENOSPC or quota) —
/// the one I/O error class the cache degrades through instead of
/// propagating, mirroring `JsonlWriterSink`'s latch.
fn is_disk_full(e: &CampaignError) -> bool {
    match e {
        CampaignError::Io { source, .. } => {
            matches!(
                source.kind(),
                std::io::ErrorKind::StorageFull | std::io::ErrorKind::QuotaExceeded
            ) || source.raw_os_error() == Some(28) // ENOSPC
        }
        _ => false,
    }
}

/// Monotonic service counters, exported by `STATS`.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted (including shed ones).
    pub requests: AtomicU64,
    /// Requests answered `OK`.
    pub ok: AtomicU64,
    /// Warm cache hits.
    pub hits: AtomicU64,
    /// Cold misses that went to the scheduler.
    pub misses: AtomicU64,
    /// Connections shed by admission control.
    pub shed: AtomicU64,
    /// Requests rejected as malformed (parse error, framing error,
    /// oversized body, read timeout).
    pub malformed: AtomicU64,
    /// Requests whose deadline expired with nothing to return.
    pub deadline: AtomicU64,
    /// Requests that failed with a typed scheduling error.
    pub sched_errors: AtomicU64,
    /// `OK` responses that were degraded (best-so-far under an expired
    /// deadline).
    pub degraded: AtomicU64,
    /// Internal failures (cache I/O, invariant breaks).
    pub internal_errors: AtomicU64,
    /// Connections closed because their socket read/write timeouts could
    /// not be armed — serving without a deadline would hand a hostile
    /// client an unbounded worker, so the connection is dropped and the
    /// failure counted instead of silently ignored.
    pub timeout_config_failures: AtomicU64,
}

struct ServerState {
    config: ServeConfig,
    config_fp: String,
    stats: ServeStats,
    cache: Mutex<ScheduleCache>,
    watchdog: Watchdog,
    telemetry: Telemetry,
    started: Instant,
}

impl ServerState {
    /// One JSON line of counters and cache state. `schema` versions the
    /// field set so dashboards and CI diffs detect format drift instead
    /// of guessing; `uptime_ms` is monotonic since bind (the one
    /// non-deterministic field, placed right after the schema so the
    /// deterministic remainder still diffs cleanly).
    fn stats_json(&self) -> String {
        let s = &self.stats;
        let cache_json = match self.cache.lock() {
            Ok(cache) => format!(
                "{{\"entries\":{},\"quarantined\":{},\"corrupt_lines\":{},\
                 \"repaired_bytes\":{},\"compactions\":{},\"evicted_entries\":{},\
                 \"journal_bytes\":{},\"journal_lines\":{},\"degraded_writes\":{},\
                 \"write_degraded\":{}}}",
                cache.len(),
                cache.quarantined(),
                cache.corrupt_lines,
                cache.repaired_bytes,
                cache.compactions(),
                cache.evicted_entries(),
                cache.journal_bytes(),
                cache.journal_lines(),
                cache.degraded_writes(),
                u8::from(cache.is_degraded()),
            ),
            Err(_) => "{}".to_string(),
        };
        format!(
            "{{\"schema\":{METRICS_SCHEMA},\"uptime_ms\":{},\
             \"serve\":{{\"requests\":{},\"ok\":{},\"hits\":{},\"misses\":{},\"shed\":{},\
             \"malformed\":{},\"deadline\":{},\"sched_errors\":{},\"degraded\":{},\
             \"internal_errors\":{},\"timeout_config_failures\":{},\
             \"cache\":{cache_json}}}}}",
            u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            s.requests.load(Ordering::Relaxed),
            s.ok.load(Ordering::Relaxed),
            s.hits.load(Ordering::Relaxed),
            s.misses.load(Ordering::Relaxed),
            s.shed.load(Ordering::Relaxed),
            s.malformed.load(Ordering::Relaxed),
            s.deadline.load(Ordering::Relaxed),
            s.sched_errors.load(Ordering::Relaxed),
            s.degraded.load(Ordering::Relaxed),
            s.internal_errors.load(Ordering::Relaxed),
            s.timeout_config_failures.load(Ordering::Relaxed),
        )
    }
}

/// A running server: accepted connections flow through admission control
/// onto the worker pool until [`shutdown`](Server::shutdown).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound,
    /// [`ServeError::Cache`] when the cache journal cannot be opened.
    pub fn bind(addr: &str, config: ServeConfig) -> Result<(Server, CacheLoadReport), ServeError> {
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        Server::start(listener, config)
    }

    /// Starts serving on an already bound listener.
    ///
    /// # Errors
    ///
    /// [`ServeError::Cache`] when the cache journal cannot be opened;
    /// [`ServeError::Bind`] when the listener's address cannot be read.
    pub fn start(
        listener: TcpListener,
        config: ServeConfig,
    ) -> Result<(Server, CacheLoadReport), ServeError> {
        let addr = listener.local_addr().map_err(|source| ServeError::Bind {
            addr: "<unbound listener>".to_string(),
            source,
        })?;
        let (cache, load_report) = ScheduleCache::open_with(
            config.cache_path.as_deref(),
            config.durable,
            config.compaction,
        )
        .map_err(ServeError::Cache)?;
        let config_fp = config_fingerprint(&config.scheduler, 0);
        let telemetry = Telemetry::new(config.span_ring);
        let state = Arc::new(ServerState {
            config,
            config_fp,
            stats: ServeStats::default(),
            cache: Mutex::new(cache),
            watchdog: Watchdog::new(),
            telemetry,
            started: Instant::now(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let worker_state = Arc::clone(&accept_state);
            let pool = Service::new(
                accept_state.config.jobs,
                accept_state.config.queue_cap,
                move |_, stream: TcpStream| handle_connection(&worker_state, &stream),
            );
            loop {
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => continue,
                };
                if accept_stop.load(Ordering::Acquire) {
                    break; // the shutdown self-connection
                }
                accept_state.stats.requests.fetch_add(1, Ordering::Relaxed);
                if configure_stream(&stream, accept_state.config.io_timeout).is_err() {
                    // A connection without I/O deadlines is a connection
                    // that can pin a worker forever: close it and count
                    // the failure rather than serving unprotected.
                    accept_state
                        .stats
                        .timeout_config_failures
                        .fetch_add(1, Ordering::Relaxed);
                    drop(stream);
                    continue;
                }
                if let Err(Rejected(stream)) = pool.try_submit(stream) {
                    // Admission queue full: shed with a typed response.
                    // A short detached thread writes it, half-closes, and
                    // drains the client's unread bytes (dropping them
                    // unread would RST the response away); each is
                    // bounded by the socket timeouts, and the acceptor
                    // itself never blocks on a shed client.
                    accept_state.stats.shed.fetch_add(1, Ordering::Relaxed);
                    if accept_state.config.telemetry {
                        // A shed connection never reaches a worker, so
                        // the acceptor records its span: zero stages,
                        // outcome overload.
                        let id = accept_state.telemetry.next_request_id();
                        let mut span = RequestSpan::new(id, "SCHED");
                        span.outcome = SpanOutcome::Overload;
                        accept_state.telemetry.record(span);
                    }
                    std::thread::spawn(move || {
                        let mut stream = stream;
                        let _ = stream.write_all(b"ERR overload admission queue full\n");
                        let _ = stream.shutdown(std::net::Shutdown::Write);
                        let mut sink = [0u8; 1024];
                        while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0)
                        {
                        }
                    });
                }
            }
            // Dropping the pool drains admitted connections and joins
            // the workers: graceful shutdown never abandons admitted
            // work.
        });
        Ok((
            Server {
                addr,
                state,
                stop,
                accept_thread: Some(accept_thread),
            },
            load_report,
        ))
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The stats JSON line, as `STATS` would return it.
    pub fn stats_json(&self) -> String {
        self.state.stats_json()
    }

    /// Stops accepting, drains admitted requests, and joins every
    /// thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor with a self-connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// Arms socket timeouts. A connection whose deadlines cannot be armed
/// must not be served (a stalled peer would pin a worker forever), so
/// the failure is returned for the caller to count and close on —
/// never silently swallowed. `set_nodelay` stays advisory: losing Nagle
/// batching costs latency, not safety.
fn configure_stream(stream: &TcpStream, timeout: Duration) -> Result<(), std::io::Error> {
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    Ok(())
}

/// The wall budget for one whole request-read phase.
///
/// The per-call socket timeout bounds each individual `read`, but a
/// slowloris client defeats it by dripping one byte per tick: every read
/// succeeds, the phase never ends. `ReadPhase` closes that hole — it is
/// checked between reads ([`tick`](Self::tick)), fails the phase once
/// the total deadline passes, and re-arms the socket read timeout to the
/// remaining time so even the final blocking read cannot overshoot.
struct ReadPhase<'a> {
    stream: Option<&'a TcpStream>,
    deadline: Option<Instant>,
    io_timeout: Duration,
}

impl ReadPhase<'_> {
    /// A phase bound to a live socket.
    fn bounded(stream: &TcpStream, budget: Duration, io_timeout: Duration) -> ReadPhase<'_> {
        ReadPhase {
            stream: Some(stream),
            deadline: Some(Instant::now() + budget),
            io_timeout,
        }
    }

    /// No deadline at all — for unit tests over in-memory readers.
    #[cfg(test)]
    fn unbounded() -> ReadPhase<'static> {
        ReadPhase {
            stream: None,
            deadline: None,
            io_timeout: Duration::from_secs(0),
        }
    }

    /// Charges one inter-read check: fails once the phase deadline has
    /// passed, and otherwise shrinks the socket read timeout to
    /// `min(io_timeout, remaining)` so the next blocking read cannot
    /// sleep past the phase end.
    fn tick(&self) -> Result<(), std::io::Error> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        let now = Instant::now();
        if now >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "read phase deadline exceeded (slow client)",
            ));
        }
        if let Some(stream) = self.stream {
            let remaining = (deadline - now)
                .min(self.io_timeout)
                .max(Duration::from_millis(1));
            stream.set_read_timeout(Some(remaining))?;
        }
        Ok(())
    }
}

/// Reads one `\n`-terminated header line of at most `max` bytes.
/// Returns `Ok(None)` at EOF before any byte. A trailing `\r` (CRLF
/// framing) is stripped, so `SCHED\r\n` parses like `SCHED\n`.
fn read_header_line(
    reader: &mut impl BufRead,
    max: usize,
    phase: &ReadPhase<'_>,
) -> Result<Option<String>, std::io::Error> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        phase.tick()?;
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ))
            };
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            break;
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        reader.consume(n);
        if line.len() > max {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "header line too long",
            ));
        }
    }
    if line.ends_with(b"\r") {
        line.pop();
    }
    if line.len() > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "header line too long",
        ));
    }
    Ok(Some(String::from_utf8_lossy(&line).into_owned()))
}

/// How one request ended, for the stats counters.
enum Outcome {
    OkWarm,
    OkCold {
        degraded: bool,
    },
    /// A `STATS` request: counted as a request, not a schedule.
    Stats,
    Malformed,
    Deadline,
    Sched,
    Internal,
}

/// Flattens a detail message onto one response line.
fn one_line(detail: &str) -> String {
    detail.replace(['\n', '\r'], "; ")
}

fn respond(stream: &TcpStream, text: &str) -> Result<(), std::io::Error> {
    let mut stream = stream;
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

/// The deterministic `OK` line for an entry — used identically for cold
/// and warm responses, so a warm hit is byte-for-byte the cold answer.
fn ok_line(entry: &CacheEntry) -> String {
    format!(
        "OK ii={} copies={} max_registers={} attempts={} degraded={}\n",
        entry.ii,
        entry.copies,
        entry.max_registers,
        entry.attempts,
        u8::from(entry.degraded),
    )
}

fn handle_connection(state: &ServerState, stream: &TcpStream) {
    let outcome = serve_one(state, stream);
    let s = &state.stats;
    match outcome {
        Outcome::OkWarm => {
            s.ok.fetch_add(1, Ordering::Relaxed);
            s.hits.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::OkCold { degraded } => {
            s.ok.fetch_add(1, Ordering::Relaxed);
            s.misses.fetch_add(1, Ordering::Relaxed);
            if degraded {
                s.degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
        Outcome::Stats => {}
        Outcome::Malformed => {
            s.malformed.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::Deadline => {
            s.deadline.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::Sched => {
            s.sched_errors.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::Internal => {
            s.internal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn serve_one(state: &ServerState, stream: &TcpStream) -> Outcome {
    let req_start = Instant::now();
    let mut reader = BufReader::new(stream);
    let phase = ReadPhase::bounded(
        stream,
        Duration::from_millis(state.config.read_phase_ms),
        state.config.io_timeout,
    );
    let header = match read_header_line(&mut reader, 256, &phase) {
        Ok(Some(h)) => h,
        Ok(None) => {
            let _ = respond(stream, "ERR malformed empty request\n");
            return Outcome::Malformed;
        }
        Err(e) => {
            let _ = respond(stream, &format!("ERR malformed request read failed: {e}\n"));
            return Outcome::Malformed;
        }
    };
    let header_us = elapsed_us(req_start);
    let mut words = header.split_whitespace();
    match words.next() {
        Some("STATS") => {
            let _ = respond(stream, &format!("{}\n", state.stats_json()));
            Outcome::Stats
        }
        Some("METRICS") => {
            let _ = respond(
                stream,
                &format!(
                    "{}\n{}",
                    state.telemetry.metrics_json(),
                    state.telemetry.prometheus()
                ),
            );
            Outcome::Stats
        }
        Some("SCHED") => {
            let mut span = new_span(state, "SCHED", header_us);
            let outcome = serve_sched(state, &mut reader, stream, words, &phase, &mut span);
            finish_span(state, span, req_start, &outcome);
            outcome
        }
        Some("TRACE") => {
            let mut span = new_span(state, "TRACE", header_us);
            span.cache = CacheDisposition::Bypass;
            let outcome = serve_trace(state, &mut reader, stream, words, &phase, &mut span);
            finish_span(state, span, req_start, &outcome);
            outcome
        }
        Some(other) => {
            let _ = respond(
                stream,
                &format!("ERR malformed unknown command {}\n", one_line(other)),
            );
            Outcome::Malformed
        }
        None => {
            let _ = respond(stream, "ERR malformed empty request\n");
            Outcome::Malformed
        }
    }
}

/// A span for one schedule-class request. When telemetry is off the id
/// stays 0 and the span is never recorded (see [`finish_span`]), so the
/// only cost on the disabled path is a stack value.
fn new_span(state: &ServerState, verb: &'static str, header_us: u64) -> RequestSpan {
    let id = if state.config.telemetry {
        state.telemetry.next_request_id()
    } else {
        0
    };
    let mut span = RequestSpan::new(id, verb);
    span.stages.read_us = header_us;
    span
}

/// Stamps the span's total wall time and outcome and records it.
fn finish_span(state: &ServerState, mut span: RequestSpan, req_start: Instant, outcome: &Outcome) {
    if !state.config.telemetry {
        return;
    }
    span.total_us = elapsed_us(req_start);
    span.outcome = match outcome {
        Outcome::OkWarm | Outcome::OkCold { degraded: false } => SpanOutcome::Ok,
        Outcome::OkCold { degraded: true } => SpanOutcome::Degraded,
        Outcome::Stats => return,
        Outcome::Malformed => SpanOutcome::Malformed,
        Outcome::Deadline => SpanOutcome::Deadline,
        Outcome::Sched => SpanOutcome::Sched,
        Outcome::Internal => SpanOutcome::Internal,
    };
    state.telemetry.record(span);
}

/// Reads one `NAME <len>` section header plus its body. The body is
/// read in bounded chunks with a phase-deadline check between chunks, so
/// a client dripping a large body slowly cannot outlive the read phase.
fn read_section(
    reader: &mut impl BufRead,
    name: &str,
    max: usize,
    phase: &ReadPhase<'_>,
) -> Result<String, String> {
    let header = match read_header_line(reader, 256, phase) {
        Ok(Some(h)) => h,
        Ok(None) => return Err(format!("missing {name} section")),
        Err(e) => return Err(format!("reading {name} header: {e}")),
    };
    let mut words = header.split_whitespace();
    if words.next() != Some(name) {
        return Err(format!(
            "expected {name} section, got {}",
            one_line(&header)
        ));
    }
    let len: usize = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("{name} section needs a byte length"))?;
    if len > max {
        return Err(format!(
            "{name} section of {len} bytes exceeds the {max}-byte cap"
        ));
    }
    let mut body = vec![0u8; len];
    let mut off = 0usize;
    while off < len {
        phase
            .tick()
            .map_err(|e| format!("reading {name} body: {e}"))?;
        let end = (off + 4096).min(len);
        reader
            .read_exact(&mut body[off..end])
            .map_err(|e| format!("reading {name} body: {e}"))?;
        off = end;
    }
    String::from_utf8(body).map_err(|_| format!("{name} body is not UTF-8"))
}

fn serve_sched<'a>(
    state: &ServerState,
    reader: &mut impl BufRead,
    stream: &TcpStream,
    options: impl Iterator<Item = &'a str>,
    phase: &ReadPhase<'_>,
    span: &mut RequestSpan,
) -> Outcome {
    // Request options.
    let mut limit = state.config.step_limit;
    let mut wall_ms = state.config.wall_ms;
    for opt in options {
        if let Some(v) = opt.strip_prefix("limit=") {
            match v.parse::<u64>() {
                Ok(v) => limit = v,
                Err(_) => {
                    let _ = respond(stream, "ERR malformed bad limit= value\n");
                    return Outcome::Malformed;
                }
            }
        } else if let Some(v) = opt.strip_prefix("wall_ms=") {
            match v.parse::<u64>() {
                // The request may tighten the server deadline, never
                // widen it.
                Ok(v) => wall_ms = Some(wall_ms.map_or(v, |server| server.min(v))),
                Err(_) => {
                    let _ = respond(stream, "ERR malformed bad wall_ms= value\n");
                    return Outcome::Malformed;
                }
            }
        } else {
            let _ = respond(
                stream,
                &format!("ERR malformed unknown option {}\n", one_line(opt)),
            );
            return Outcome::Malformed;
        }
    }
    // max(1) guards a misconfigured zero cap: clamp panics if min > max.
    let limit = limit.clamp(1, state.config.max_step_limit.max(1));

    // Bodies.
    let t_read = Instant::now();
    let max = state.config.max_request_bytes;
    let kernel_text = match read_section(reader, "KERNEL", max, phase) {
        Ok(t) => t,
        Err(detail) => {
            let _ = respond(stream, &format!("ERR malformed {}\n", one_line(&detail)));
            return Outcome::Malformed;
        }
    };
    let arch_text = match read_section(reader, "ARCH", max, phase) {
        Ok(t) => t,
        Err(detail) => {
            let _ = respond(stream, &format!("ERR malformed {}\n", one_line(&detail)));
            return Outcome::Malformed;
        }
    };
    match read_header_line(reader, 256, phase) {
        Ok(Some(end)) if end.trim() == "END" => {}
        Ok(_) | Err(_) => {
            let _ = respond(stream, "ERR malformed missing END\n");
            return Outcome::Malformed;
        }
    }
    span.stages.read_us += elapsed_us(t_read);
    // The request is fully read: restore the full per-call timeout for
    // the (possibly much later) response write.
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));

    // Parse both wire payloads with spanned errors.
    let t_parse = Instant::now();
    let parsed = parse_payloads(stream, &kernel_text, &arch_text);
    span.stages.parse_us = elapsed_us(t_parse);
    let Some((kernel, arch)) = parsed else {
        return Outcome::Malformed;
    };
    span.kernel = kernel.name().to_string();

    let key = cache_key(kernel_hash(&kernel), arch.fingerprint(), &state.config_fp);

    // Warm path: serve straight from the cache.
    let t_cache = Instant::now();
    {
        let Ok(cache) = state.cache.lock() else {
            let _ = respond(stream, "ERR internal cache lock poisoned\n");
            return Outcome::Internal;
        };
        if let Some(entry) = cache.lookup(key, limit) {
            let line = ok_line(entry);
            span.cache = CacheDisposition::Hit;
            span.stages.cache_us = elapsed_us(t_cache);
            span.attempts = entry.attempts;
            span.ii = entry.ii;
            drop(cache);
            let t_respond = Instant::now();
            let _ = respond(stream, &format!("CACHE hit\n{line}"));
            span.stages.respond_us = elapsed_us(t_respond);
            return Outcome::OkWarm;
        }
    }
    span.cache = CacheDisposition::Miss;
    span.stages.cache_us = elapsed_us(t_cache);

    // Cold path: schedule under the request deadline.
    let t_sched = Instant::now();
    let token = CancelToken::new();
    let budget = StepBudget::new(limit).with_cancel(token.clone());
    let _guard = wall_ms.map(|ms| {
        state
            .watchdog
            .watch(token.clone(), Instant::now() + Duration::from_millis(ms))
    });
    // With telemetry on, a rollup-only sink rides along so the span can
    // attribute the request's attempts to reject reasons and ladder
    // rungs; with telemetry off the scheduler runs sink-free (no event
    // is even constructed).
    let mut capture = state.config.telemetry.then(TraceCapture::rollup_only);
    let (result, report) = match capture.as_mut() {
        Some(sink) => schedule_kernel_anytime_traced(
            &arch,
            &kernel,
            state.config.scheduler.clone(),
            &RetryPolicy::default(),
            &budget,
            sink,
        ),
        None => schedule_kernel_anytime(
            &arch,
            &kernel,
            state.config.scheduler.clone(),
            &RetryPolicy::default(),
            &budget,
        ),
    };
    if let Some(capture) = &capture {
        span.rejects = capture.rejects();
        span.deadline_events = capture.deadline_events();
        span.rung = capture.rung();
    }
    span.attempts = report.attempts_spent;
    span.degraded = report.degraded;
    match result {
        Ok(schedule) => {
            if let Err(violations) = validate::validate(&arch, &kernel, &schedule) {
                let detail = violations
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ");
                let _ = respond(
                    stream,
                    &format!("ERR internal invalid schedule: {}\n", one_line(&detail)),
                );
                return Outcome::Internal;
            }
            span.ii = schedule.ii().unwrap_or(0);
            if state.config.telemetry {
                // Binding-constraint attribution for the dashboard's
                // slow-request ring: one cheap analysis pass over the
                // finished schedule.
                span.binding = explain::explain(&arch, &kernel, &schedule).binding.kind();
            }
            let entry = CacheEntry {
                ii: schedule.ii().unwrap_or(0),
                copies: schedule.num_copies() as u64,
                max_registers: regalloc::analyze(&arch, &kernel, &schedule).max_required() as u64,
                attempts: report.attempts_spent,
                degraded: report.degraded,
                limit,
            };
            span.stages.sched_us = elapsed_us(t_sched);
            // Journal before responding: a response is only ever sent
            // for a durably recorded entry, so a crash immediately after
            // the response still serves this key warm on restart.
            let t_journal = Instant::now();
            {
                let Ok(mut cache) = state.cache.lock() else {
                    let _ = respond(stream, "ERR internal cache lock poisoned\n");
                    return Outcome::Internal;
                };
                if let Err(e) = cache.insert(key, entry.clone()) {
                    drop(cache);
                    let _ = respond(
                        stream,
                        &format!("ERR internal cache append: {}\n", one_line(&e.to_string())),
                    );
                    return Outcome::Internal;
                }
            }
            span.stages.journal_us = elapsed_us(t_journal);
            let t_respond = Instant::now();
            let _ = respond(stream, &format!("CACHE miss\n{}", ok_line(&entry)));
            span.stages.respond_us = elapsed_us(t_respond);
            Outcome::OkCold {
                degraded: entry.degraded,
            }
        }
        Err(e) if e.is_budget_stop() => {
            span.stages.sched_us = elapsed_us(t_sched);
            let _ = respond(
                stream,
                &format!("ERR deadline {}\n", one_line(&e.to_string())),
            );
            Outcome::Deadline
        }
        Err(e) => {
            span.stages.sched_us = elapsed_us(t_sched);
            let _ = respond(stream, &format!("ERR sched {}\n", one_line(&e.to_string())));
            Outcome::Sched
        }
    }
}

/// Parses the two wire payloads, answering `ERR malformed` itself on
/// failure (shared by `SCHED` and `TRACE`).
fn parse_payloads(
    stream: &TcpStream,
    kernel_text: &str,
    arch_text: &str,
) -> Option<(Kernel, csched_machine::Architecture)> {
    let kernel = match csched_ir::text::parse(kernel_text) {
        Ok(k) => k,
        Err(e) => {
            let _ = respond(
                stream,
                &format!("ERR malformed kernel: {}\n", one_line(&e.to_string())),
            );
            return None;
        }
    };
    let arch = match csched_machine::text::parse(arch_text) {
        Ok(a) => a,
        Err(e) => {
            let _ = respond(
                stream,
                &format!("ERR malformed machine: {}\n", one_line(&e.to_string())),
            );
            return None;
        }
    };
    Some((kernel, arch))
}

/// `TRACE`: frames exactly like `SCHED` (plus `events=`/`full=`
/// options), always bypasses the cache, schedules with a bounded
/// [`TraceCapture`] attached, and streams the retained events back as
/// JSONL — each line gains a leading `"req"` key — before a
/// `TRACE end` summary and the final `OK`/`ERR` line.
fn serve_trace<'a>(
    state: &ServerState,
    reader: &mut impl BufRead,
    stream: &TcpStream,
    options: impl Iterator<Item = &'a str>,
    phase: &ReadPhase<'_>,
    span: &mut RequestSpan,
) -> Outcome {
    let mut limit = state.config.step_limit;
    let mut wall_ms = state.config.wall_ms;
    let mut event_cap = state.config.trace_event_cap;
    let mut full = false;
    for opt in options {
        if let Some(v) = opt.strip_prefix("limit=") {
            match v.parse::<u64>() {
                Ok(v) => limit = v,
                Err(_) => {
                    let _ = respond(stream, "ERR malformed bad limit= value\n");
                    return Outcome::Malformed;
                }
            }
        } else if let Some(v) = opt.strip_prefix("wall_ms=") {
            match v.parse::<u64>() {
                Ok(v) => wall_ms = Some(wall_ms.map_or(v, |server| server.min(v))),
                Err(_) => {
                    let _ = respond(stream, "ERR malformed bad wall_ms= value\n");
                    return Outcome::Malformed;
                }
            }
        } else if let Some(v) = opt.strip_prefix("events=") {
            match v.parse::<usize>() {
                // The client may tighten the server's event cap, never
                // widen it — the cap is the worker-protection bound.
                Ok(v) => event_cap = event_cap.min(v),
                Err(_) => {
                    let _ = respond(stream, "ERR malformed bad events= value\n");
                    return Outcome::Malformed;
                }
            }
        } else if opt == "full=1" {
            full = true;
        } else if opt == "full=0" {
            full = false;
        } else {
            let _ = respond(
                stream,
                &format!("ERR malformed unknown option {}\n", one_line(opt)),
            );
            return Outcome::Malformed;
        }
    }
    let limit = limit.clamp(1, state.config.max_step_limit.max(1));

    let t_read = Instant::now();
    let max = state.config.max_request_bytes;
    let kernel_text = match read_section(reader, "KERNEL", max, phase) {
        Ok(t) => t,
        Err(detail) => {
            let _ = respond(stream, &format!("ERR malformed {}\n", one_line(&detail)));
            return Outcome::Malformed;
        }
    };
    let arch_text = match read_section(reader, "ARCH", max, phase) {
        Ok(t) => t,
        Err(detail) => {
            let _ = respond(stream, &format!("ERR malformed {}\n", one_line(&detail)));
            return Outcome::Malformed;
        }
    };
    match read_header_line(reader, 256, phase) {
        Ok(Some(end)) if end.trim() == "END" => {}
        Ok(_) | Err(_) => {
            let _ = respond(stream, "ERR malformed missing END\n");
            return Outcome::Malformed;
        }
    }
    span.stages.read_us += elapsed_us(t_read);
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));

    let t_parse = Instant::now();
    let parsed = parse_payloads(stream, &kernel_text, &arch_text);
    span.stages.parse_us = elapsed_us(t_parse);
    let Some((kernel, arch)) = parsed else {
        return Outcome::Malformed;
    };
    span.kernel = kernel.name().to_string();

    // Cache deliberately bypassed: a trace of a warm hit would be
    // empty, and the point of TRACE is the event stream.
    let t_sched = Instant::now();
    let token = CancelToken::new();
    let budget = StepBudget::new(limit).with_cancel(token.clone());
    let _guard = wall_ms.map(|ms| {
        state
            .watchdog
            .watch(token.clone(), Instant::now() + Duration::from_millis(ms))
    });
    let mut capture = TraceCapture::capture(event_cap, full);
    let (result, report) = schedule_kernel_anytime_traced(
        &arch,
        &kernel,
        state.config.scheduler.clone(),
        &RetryPolicy::default(),
        &budget,
        &mut capture,
    );
    span.rejects = capture.rejects();
    span.deadline_events = capture.deadline_events();
    span.rung = capture.rung();
    span.attempts = report.attempts_spent;
    span.degraded = report.degraded;
    span.stages.sched_us = elapsed_us(t_sched);

    // The event stream and summary precede the final status line, so a
    // client can parse the response as: JSONL until a non-`{` line,
    // one `TRACE end` summary, one `OK`/`ERR`.
    let mut text = String::with_capacity(capture.events().len() * 48 + 128);
    for event in capture.events() {
        let json = event.to_json();
        // `{"event":...}` becomes `{"req":N,"event":...}`.
        text.push_str(&format!("{{\"req\":{},{}\n", span.id, &json[1..]));
    }
    text.push_str(&format!(
        "TRACE end events={} total={} truncated={}\n",
        capture.events().len(),
        capture.total(),
        u8::from(capture.truncated()),
    ));
    if state.config.telemetry {
        state
            .telemetry
            .add_trace_events(capture.events().len() as u64);
    }

    let outcome = match result {
        Ok(schedule) => {
            span.ii = schedule.ii().unwrap_or(0);
            if state.config.telemetry {
                span.binding = explain::explain(&arch, &kernel, &schedule).binding.kind();
            }
            let entry = CacheEntry {
                ii: schedule.ii().unwrap_or(0),
                copies: schedule.num_copies() as u64,
                max_registers: regalloc::analyze(&arch, &kernel, &schedule).max_required() as u64,
                attempts: report.attempts_spent,
                degraded: report.degraded,
                limit,
            };
            text.push_str(&ok_line(&entry));
            Outcome::OkCold {
                degraded: entry.degraded,
            }
        }
        Err(e) if e.is_budget_stop() => {
            text.push_str(&format!("ERR deadline {}\n", one_line(&e.to_string())));
            Outcome::Deadline
        }
        Err(e) => {
            text.push_str(&format!("ERR sched {}\n", one_line(&e.to_string())));
            Outcome::Sched
        }
    };
    let t_respond = Instant::now();
    let _ = respond(stream, &text);
    span.stages.respond_us = elapsed_us(t_respond);
    outcome
}

// ---------------------------------------------------------------------
// Client helpers (used by the `serve` binary, the CI smoke script, and
// the robustness tests).
// ---------------------------------------------------------------------

/// Sends one `SCHED` request and returns the server's full response
/// text (both lines on success, the `ERR` line on failure).
///
/// # Errors
///
/// [`ServeError::Io`] when the connection fails or times out.
pub fn client_request(
    addr: &str,
    kernel_text: &str,
    arch_text: &str,
    limit: Option<u64>,
    wall_ms: Option<u64>,
    timeout: Duration,
) -> Result<String, ServeError> {
    let mut request = String::from("SCHED");
    if let Some(limit) = limit {
        request.push_str(&format!(" limit={limit}"));
    }
    if let Some(wall) = wall_ms {
        request.push_str(&format!(" wall_ms={wall}"));
    }
    request.push('\n');
    request.push_str(&format!("KERNEL {}\n", kernel_text.len()));
    request.push_str(kernel_text);
    request.push_str(&format!("ARCH {}\n", arch_text.len()));
    request.push_str(arch_text);
    request.push_str("END\n");
    client_raw(addr, request.as_bytes(), timeout)
}

/// Sends `STATS` and returns the JSON line.
///
/// # Errors
///
/// [`ServeError::Io`] when the connection fails or times out.
pub fn client_stats(addr: &str, timeout: Duration) -> Result<String, ServeError> {
    client_raw(addr, b"STATS\n", timeout).map(|s| s.trim_end().to_string())
}

/// Sends `METRICS` and returns the raw response: one JSON line followed
/// by the Prometheus text exposition.
///
/// # Errors
///
/// [`ServeError::Io`] when the connection fails or times out.
pub fn client_metrics(addr: &str, timeout: Duration) -> Result<String, ServeError> {
    client_raw(addr, b"METRICS\n", timeout)
}

/// Sends one `TRACE` request and returns the full response text: the
/// JSONL event lines, the `TRACE end` summary, and the final `OK`/`ERR`
/// line.
///
/// # Errors
///
/// [`ServeError::Io`] when the connection fails or times out.
pub fn client_trace(
    addr: &str,
    kernel_text: &str,
    arch_text: &str,
    events: Option<usize>,
    full: bool,
    timeout: Duration,
) -> Result<String, ServeError> {
    let mut request = String::from("TRACE");
    if let Some(events) = events {
        request.push_str(&format!(" events={events}"));
    }
    if full {
        request.push_str(" full=1");
    }
    request.push('\n');
    request.push_str(&format!("KERNEL {}\n", kernel_text.len()));
    request.push_str(kernel_text);
    request.push_str(&format!("ARCH {}\n", arch_text.len()));
    request.push_str(arch_text);
    request.push_str("END\n");
    client_raw(addr, request.as_bytes(), timeout)
}

/// Sends raw request bytes and reads the response to EOF — the hook for
/// malformed-request testing.
///
/// # Errors
///
/// [`ServeError::Io`] when the connection fails or times out.
pub fn client_raw(addr: &str, request: &[u8], timeout: Duration) -> Result<String, ServeError> {
    let io = |context: &'static str| move |source| ServeError::Io { context, source };
    let mut stream = TcpStream::connect(addr).map_err(io("connect"))?;
    configure_stream(&stream, timeout).map_err(io("arm socket timeouts"))?;
    stream.write_all(request).map_err(io("send request"))?;
    // Half-close so a server reading to EOF is never stuck on us.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(io("read response"))?;
    Ok(response)
}

// ---------------------------------------------------------------------
// Client-side resilience: seeded retry with exponential backoff.
// ---------------------------------------------------------------------

/// How a client retries a failed request. Retries are
/// idempotent-by-construction: the server journals an entry *before*
/// responding, and requests are content-addressed, so re-sending the
/// same request can only hit the cache or recompute the identical
/// deterministic answer — never double-apply anything.
#[derive(Clone, Debug)]
pub struct RetryConfig {
    /// Retry budget: total attempts are `1 + retries`.
    pub retries: u32,
    /// Base backoff in milliseconds; attempt `n` waits
    /// `backoff_ms * 2^n` plus a uniform jitter of the same magnitude
    /// (capped at [`RetryConfig::MAX_BACKOFF_MS`]).
    pub backoff_ms: u64,
    /// Seed for the jitter stream — the same seed replays the same
    /// backoff schedule.
    pub seed: u64,
}

impl RetryConfig {
    /// Cap on one backoff step, jitter included.
    pub const MAX_BACKOFF_MS: u64 = 5_000;
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            retries: 4,
            backoff_ms: 50,
            seed: 0x5eed,
        }
    }
}

/// What a retried request cost: every attempt, every reason, all the
/// waiting — the typed receipt for post-hoc analysis and the soak
/// harness's invariants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetryReport {
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Milliseconds spent backing off between attempts.
    pub total_backoff_ms: u64,
    /// One reason per retried attempt, in order.
    pub retried: Vec<String>,
}

/// Whether `response` is a *complete* wire response: one `ERR` line, or
/// a `CACHE hit|miss` line followed by an `OK`/`ERR` line, all
/// newline-terminated. A torn TCP stream (proxy truncation, server
/// crash mid-write) fails this check and is therefore retryable.
pub fn response_complete(response: &str) -> bool {
    if !response.ends_with('\n') {
        return false;
    }
    let mut lines = response.lines();
    match lines.next() {
        Some(first) if first.starts_with("ERR ") => true,
        Some("CACHE hit") | Some("CACHE miss") => matches!(
            lines.next(),
            Some(second) if second.starts_with("OK ") || second.starts_with("ERR ")
        ),
        _ => false,
    }
}

/// Whether a (complete or torn) response deserves a retry. Transient
/// server states retry: `overload` (shed), `deadline` (contention), and
/// torn/incomplete responses (the transport failed, not the request).
/// `ERR malformed` also retries: the request the *caller* built is
/// well-formed by construction, so a malformed verdict means the bytes
/// were mangled in flight (exactly what a chaos proxy's torn writes
/// do). Genuine scheduling failures (`sched`, `internal`) do not retry
/// — the same deterministic answer would come back.
pub fn response_retryable(response: &str) -> bool {
    if !response_complete(response) {
        return true;
    }
    let err_line = response
        .lines()
        .find(|l| l.starts_with("ERR "))
        .unwrap_or("");
    err_line.starts_with("ERR overload")
        || err_line.starts_with("ERR deadline")
        || err_line.starts_with("ERR malformed")
}

/// [`client_request`] with seeded exponential backoff: retries transport
/// failures and transient server errors up to `retry.retries` times,
/// returning the final result plus a [`RetryReport`] of what the
/// resilience cost.
///
/// # Errors
///
/// [`ServeError::Io`] when the final attempt still failed at the
/// transport level (the report says how hard it tried).
pub fn client_request_retry(
    addr: &str,
    kernel_text: &str,
    arch_text: &str,
    limit: Option<u64>,
    wall_ms: Option<u64>,
    timeout: Duration,
    retry: &RetryConfig,
) -> (Result<String, ServeError>, RetryReport) {
    let mut rng = csched_core::faultinject::ChaosRng::new(retry.seed);
    let mut report = RetryReport::default();
    loop {
        report.attempts += 1;
        let outcome = client_request(addr, kernel_text, arch_text, limit, wall_ms, timeout);
        let reason = match &outcome {
            Ok(response) if !response_retryable(response) => {
                return (outcome, report);
            }
            Ok(response) if !response_complete(response) => "torn response".to_string(),
            Ok(response) => {
                let err = response
                    .lines()
                    .find(|l| l.starts_with("ERR "))
                    .unwrap_or("ERR");
                one_line(err)
            }
            Err(e) => format!("io: {e}"),
        };
        if report.attempts > retry.retries {
            return (outcome, report);
        }
        report.retried.push(reason);
        // Exponential base with full jitter, capped: deterministic per
        // seed, decorrelated across clients via distinct seeds.
        let exp = report.attempts.saturating_sub(1).min(16);
        let base = retry
            .backoff_ms
            .saturating_mul(1u64 << exp)
            .min(RetryConfig::MAX_BACKOFF_MS);
        let jitter = if base == 0 {
            0
        } else {
            rng.below_u64(base + 1)
        };
        let wait = (base + jitter).min(RetryConfig::MAX_BACKOFF_MS);
        report.total_backoff_ms += wait;
        std::thread::sleep(Duration::from_millis(wait));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ii: u32) -> CacheEntry {
        CacheEntry {
            ii,
            copies: 3,
            max_registers: 9,
            attempts: 1234,
            degraded: false,
            limit: 200_000,
        }
    }

    #[test]
    fn cache_line_round_trips_and_checksum_rejects_bit_flips() {
        let e = entry(7);
        let line = e.to_line(42);
        assert_eq!(CacheEntry::parse_line(&line), Some((42, e)));
        // Flip one payload character: the checksum must reject it.
        let flipped = line.replacen("\"ii\":7", "\"ii\":9", 1);
        assert_ne!(flipped, line);
        assert_eq!(CacheEntry::parse_line(&flipped), None);
        // Corrupt the checksum itself: also rejected.
        let broken_sum = line.replacen("\"sum\":", "\"sum\":1", 1);
        assert_eq!(CacheEntry::parse_line(&broken_sum), None);
    }

    #[test]
    fn cache_load_quarantines_corrupt_entries_and_heals_on_insert() {
        let dir = std::env::temp_dir().join(format!("csched-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let (mut cache, report) = ScheduleCache::open(Some(&path), false).unwrap();
            assert_eq!(report, CacheLoadReport::default());
            cache.insert(1, entry(4)).unwrap();
            cache.insert(2, entry(6)).unwrap();
        }
        // Bit-flip the first (interior) entry on disk.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[0] = lines[0].replacen("\"ii\":4", "\"ii\":5", 1);
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

        let (mut cache, report) = ScheduleCache::open(Some(&path), false).unwrap();
        assert_eq!(report.entries, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.corrupt_lines, 1);
        assert!(cache.lookup(1, 1).is_none(), "corrupt entry must not serve");
        assert_eq!(cache.lookup(2, 1), Some(&entry(6)));

        // Re-scheduling the key re-journals it and lifts the quarantine…
        cache.insert(1, entry(4)).unwrap();
        assert_eq!(cache.quarantined(), 0);
        assert_eq!(cache.lookup(1, 1), Some(&entry(4)));
        drop(cache);

        // …and the *next* load sees the healed entry (last record wins
        // over the still-present corrupt line).
        let (cache, report) = ScheduleCache::open(Some(&path), false).unwrap();
        assert_eq!(report.entries, 2);
        assert_eq!(report.quarantined, 0);
        assert_eq!(
            report.corrupt_lines, 1,
            "the old corrupt line is still counted"
        );
        assert_eq!(cache.lookup(1, 1), Some(&entry(4)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_repaired_not_quarantined() {
        let dir = std::env::temp_dir().join(format!("csched-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let (mut cache, _) = ScheduleCache::open(Some(&path), false).unwrap();
            cache.insert(1, entry(4)).unwrap();
        }
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"key\":2,\"ii\":9").unwrap(); // no newline: torn
        }
        let (cache, report) = ScheduleCache::open(Some(&path), false).unwrap();
        assert_eq!(report.entries, 1);
        assert_eq!(report.quarantined, 0, "a torn tail is not corruption");
        assert_eq!(report.corrupt_lines, 0);
        assert!(report.repaired_bytes > 0);
        assert_eq!(cache.lookup(1, 1), Some(&entry(4)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn degraded_entries_only_serve_equal_or_smaller_budgets() {
        let (mut cache, _) = ScheduleCache::open(None, false).unwrap();
        let degraded = CacheEntry {
            degraded: true,
            limit: 1_000,
            ..entry(8)
        };
        cache.insert(5, degraded.clone()).unwrap();
        assert_eq!(cache.lookup(5, 1_000), Some(&degraded));
        assert_eq!(cache.lookup(5, 500), Some(&degraded));
        assert!(
            cache.lookup(5, 2_000).is_none(),
            "a bigger budget deserves a fresh, better attempt"
        );
        // Full-quality entries serve any budget.
        cache.insert(6, entry(3)).unwrap();
        assert!(cache.lookup(6, u64::MAX).is_some());
    }

    // --- wire-framing edge cases (read_header_line / read_section) ---

    use std::io::Cursor;

    fn header(text: &str) -> Result<Option<String>, std::io::Error> {
        read_header_line(
            &mut Cursor::new(text.as_bytes()),
            64,
            &ReadPhase::unbounded(),
        )
    }

    #[test]
    fn header_line_handles_eof_crlf_and_oversize() {
        // Clean LF line.
        assert_eq!(header("SCHED\nrest").unwrap(), Some("SCHED".to_string()));
        // CRLF framing parses identically to LF.
        assert_eq!(header("SCHED\r\nrest").unwrap(), Some("SCHED".to_string()));
        // EOF before any byte is a clean None…
        assert_eq!(header("").unwrap(), None);
        // …but EOF mid-line is a typed error, not a silent partial line.
        let err = header("SCHED with no newline").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // A line exactly at the cap passes; one byte over fails.
        let exactly = "x".repeat(64);
        assert_eq!(header(&format!("{exactly}\n")).unwrap(), Some(exactly));
        let over = "x".repeat(65);
        let err = header(&format!("{over}\n")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    fn section(text: &str, max: usize) -> Result<String, String> {
        read_section(
            &mut Cursor::new(text.as_bytes()),
            "KERNEL",
            max,
            &ReadPhase::unbounded(),
        )
    }

    #[test]
    fn section_reads_exact_bodies_and_rejects_liars() {
        // Exact byte count round-trips, including newlines in the body.
        assert_eq!(section("KERNEL 5\nab\ncd", 10).unwrap(), "ab\ncd");
        // A body exactly at the cap is accepted…
        assert_eq!(section("KERNEL 4\nwxyz", 4).unwrap(), "wxyz");
        // …and one byte over the cap is rejected before any read.
        let err = section("KERNEL 5\nwxyzq", 4).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        // A count larger than what the client sends hits EOF, typed.
        let err = section("KERNEL 10\nabc", 64).unwrap_err();
        assert!(err.contains("body"), "{err}");
        // A count smaller than the real body silently swallows the
        // excess into the next read — the *next* header then fails.
        let mut cursor = Cursor::new(&b"KERNEL 3\nabcdef\nEND\n"[..]);
        let body = read_section(&mut cursor, "KERNEL", 64, &ReadPhase::unbounded()).unwrap();
        assert_eq!(body, "abc");
        let next = read_header_line(&mut cursor, 64, &ReadPhase::unbounded())
            .unwrap()
            .unwrap();
        assert_eq!(next, "def", "the lied-about bytes surface as garbage");
        // Missing section header entirely.
        let err = section("", 64).unwrap_err();
        assert!(err.contains("missing KERNEL"), "{err}");
        // Wrong section name.
        let err = section("ARCH 3\nabc", 64).unwrap_err();
        assert!(err.contains("expected KERNEL"), "{err}");
        // No byte length.
        let err = section("KERNEL\nabc", 64).unwrap_err();
        assert!(err.contains("byte length"), "{err}");
        // Non-UTF-8 body.
        let mut raw = Cursor::new(&b"KERNEL 2\n\xff\xfe"[..]);
        let err = read_section(&mut raw, "KERNEL", 64, &ReadPhase::unbounded()).unwrap_err();
        assert!(err.contains("UTF-8"), "{err}");
    }

    #[test]
    fn expired_read_phase_fails_between_reads() {
        let phase = ReadPhase {
            stream: None,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            io_timeout: Duration::from_secs(1),
        };
        let err = read_header_line(&mut Cursor::new(&b"SCHED\n"[..]), 64, &phase).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        let err = read_section(
            &mut Cursor::new(&b"KERNEL 3\nabc"[..]),
            "KERNEL",
            64,
            &phase,
        )
        .unwrap_err();
        assert!(err.contains("deadline"), "{err}");
    }

    // --- compaction and degraded-write mode ---

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("csched-serve-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.jsonl"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn compaction_rewrites_last_record_wins_and_reload_matches() {
        let path = tmp("compact");
        let policy = CompactionPolicy {
            max_journal_bytes: 1, // every dead line triggers
            max_entries: 1 << 16,
        };
        let (mut cache, _) = ScheduleCache::open_with(Some(&path), false, policy).unwrap();
        // Write each key several times: only the newest version may
        // survive compaction.
        for round in 0..3u32 {
            for key in 0..4u64 {
                cache.insert(key, entry(10 + round)).unwrap();
            }
        }
        assert!(
            cache.compactions() >= 1,
            "dead lines must trigger compaction"
        );
        assert_eq!(cache.len(), 4);
        let pre: Vec<Option<CacheEntry>> = (0..4).map(|k| cache.lookup(k, 1).cloned()).collect();
        drop(cache);
        // The on-disk journal now holds exactly the live entries…
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4, "compacted journal is minimal");
        // …and reloads to the exact same entry set.
        let (reloaded, report) = ScheduleCache::open_with(Some(&path), false, policy).unwrap();
        assert_eq!(report.entries, 4);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.corrupt_lines, 0);
        for (k, expect) in pre.iter().enumerate() {
            assert_eq!(reloaded.lookup(k as u64, 1), expect.as_ref());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_drops_corrupt_lines_and_clears_quarantine() {
        let path = tmp("compact-heal");
        {
            let (mut cache, _) = ScheduleCache::open(Some(&path), false).unwrap();
            cache.insert(1, entry(4)).unwrap();
            cache.insert(2, entry(6)).unwrap();
        }
        // Bit-flip entry 1 on disk, reload: quarantined.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[0] = lines[0].replacen("\"ii\":4", "\"ii\":5", 1);
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let policy = CompactionPolicy {
            max_journal_bytes: 1,
            max_entries: 1 << 16,
        };
        let (mut cache, report) = ScheduleCache::open_with(Some(&path), false, policy).unwrap();
        assert_eq!(report.quarantined, 1);
        // The corrupt line is a dead line: the next insert compacts it
        // away, and the quarantine clears with it (nothing corrupt is
        // left on disk to mistrust).
        cache.insert(3, entry(7)).unwrap();
        assert!(cache.compactions() >= 1);
        assert_eq!(cache.quarantined(), 0);
        drop(cache);
        let (_, report) = ScheduleCache::open_with(Some(&path), false, policy).unwrap();
        assert_eq!(report.quarantined, 0, "no corrupt line survives compaction");
        assert_eq!(report.corrupt_lines, 0);
        assert_eq!(
            report.entries, 2,
            "key 1 is gone until re-scheduled; 2 and 3 live"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn over_cap_insert_evicts_oldest_entries() {
        let path = tmp("evict");
        let policy = CompactionPolicy {
            max_journal_bytes: u64::MAX,
            max_entries: 8,
        };
        let (mut cache, _) = ScheduleCache::open_with(Some(&path), false, policy).unwrap();
        for key in 0..9u64 {
            cache.insert(key, entry(key as u32)).unwrap();
        }
        // 9 > 8 triggered an evicting compaction down to 6 (3/4 of 8).
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.evicted_entries(), 3);
        assert!(cache.lookup(0, 1).is_none(), "oldest keys evicted first");
        assert!(cache.lookup(1, 1).is_none());
        assert!(cache.lookup(2, 1).is_none());
        assert!(cache.lookup(8, 1).is_some(), "newest key survives");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn degraded_latch_keeps_serving_from_memory() {
        let path = tmp("degraded");
        let (mut cache, _) = ScheduleCache::open(Some(&path), false).unwrap();
        cache.insert(1, entry(4)).unwrap();
        cache.latch_degraded_for_test();
        // Inserts still succeed and serve…
        cache.insert(2, entry(6)).unwrap();
        cache.insert(3, entry(8)).unwrap();
        assert_eq!(cache.lookup(2, 1), Some(&entry(6)));
        assert_eq!(cache.degraded_writes(), 2);
        assert!(cache.is_degraded());
        drop(cache);
        // …but never touched the journal: only the pre-latch entry is on
        // disk.
        let (reloaded, report) = ScheduleCache::open(Some(&path), false).unwrap();
        assert_eq!(report.entries, 1);
        assert_eq!(reloaded.lookup(1, 1), Some(&entry(4)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_full_errors_are_classified() {
        let full = CampaignError::Io {
            path: "x".into(),
            operation: "append",
            source: std::io::Error::from_raw_os_error(28), // ENOSPC
        };
        assert!(is_disk_full(&full));
        let other = CampaignError::Io {
            path: "x".into(),
            operation: "append",
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope"),
        };
        assert!(!is_disk_full(&other));
    }

    // --- retry classification ---

    #[test]
    fn response_completeness_and_retryability_classify_correctly() {
        // Complete successes are final.
        assert!(response_complete(
            "CACHE miss\nOK ii=5 copies=2 max_registers=9 attempts=7 degraded=0\n"
        ));
        assert!(!response_retryable(
            "CACHE miss\nOK ii=5 copies=2 max_registers=9 attempts=7 degraded=0\n"
        ));
        // Torn responses retry: mid-line cut, missing OK line, empty.
        assert!(!response_complete("CACHE miss\nOK ii=5 cop"));
        assert!(response_retryable("CACHE miss\nOK ii=5 cop"));
        assert!(!response_complete("CACHE hit\n"));
        assert!(response_retryable("CACHE hit\n"));
        assert!(!response_complete(""));
        assert!(response_retryable(""));
        // Transient server errors retry; hard errors do not.
        assert!(response_retryable("ERR overload admission queue full\n"));
        assert!(response_retryable("ERR deadline budget exhausted\n"));
        assert!(response_retryable("ERR malformed torn request\n"));
        assert!(!response_retryable("ERR sched no capable unit\n"));
        assert!(!response_retryable("ERR internal cache append\n"));
    }

    #[test]
    fn retry_backoff_schedule_is_deterministic_per_seed() {
        // Drive the jitter stream exactly as client_request_retry does
        // and check the same seed replays the same schedule.
        let schedule = |seed: u64| -> Vec<u64> {
            let mut rng = csched_core::faultinject::ChaosRng::new(seed);
            (0u32..5)
                .map(|attempt| {
                    let base = 50u64
                        .saturating_mul(1 << attempt.min(16))
                        .min(RetryConfig::MAX_BACKOFF_MS);
                    (base + rng.below_u64(base + 1)).min(RetryConfig::MAX_BACKOFF_MS)
                })
                .collect()
        };
        assert_eq!(schedule(1), schedule(1));
        assert_ne!(
            schedule(1),
            schedule(2),
            "different seeds, different jitter"
        );
    }

    #[test]
    fn kernel_hash_is_whitespace_insensitive_via_canonical_text() {
        let w = csched_kernels::by_name("Merge").unwrap();
        let canonical = csched_ir::text::print(&w.kernel);
        let reparsed = csched_ir::text::parse(&canonical).unwrap();
        assert_eq!(kernel_hash(&w.kernel), kernel_hash(&reparsed));
    }

    #[test]
    fn cache_key_separates_kernel_arch_and_config() {
        let fp_a = "cfg-a";
        let fp_b = "cfg-b";
        assert_ne!(cache_key(1, 2, fp_a), cache_key(1, 3, fp_a));
        assert_ne!(cache_key(1, 2, fp_a), cache_key(2, 2, fp_a));
        assert_ne!(cache_key(1, 2, fp_a), cache_key(1, 2, fp_b));
    }
}
