//! `csched-serve` — a hardened, long-running scheduler service.
//!
//! The library turns one machine into a scheduling server: clients send
//! a kernel and a machine description in the existing textual wire
//! formats ([`csched_ir::text`], [`csched_machine::text`]) over TCP and
//! get back the scheduled initiation interval, copy count, and register
//! demand. Finished schedules are remembered in a **content-addressed
//! cache** keyed by (canonical kernel text hash ×
//! [`Architecture::fingerprint`](csched_machine::Architecture::fingerprint)
//! × scheduler-configuration fingerprint), persisted in a checksummed
//! journal, so a warm request skips scheduling entirely.
//!
//! Every edge is hardened:
//!
//! - **Admission control.** Connections are admitted to a *bounded*
//!   queue in front of the deterministic worker pool
//!   ([`crate::pool::Service`]). When the queue is full the acceptor
//!   sheds the connection with a typed `ERR overload` response in
//!   microseconds — an overloaded server answers, it never hangs, and
//!   admitted work is never abandoned.
//! - **Per-request deadlines.** Each request schedules under a
//!   [`StepBudget`] of placement attempts (deterministic), optionally
//!   fenced by a wall-clock deadline enforced through a shared
//!   [`Watchdog`] cancelling the request's
//!   [`CancelToken`]. Socket reads and writes
//!   carry timeouts, so a stalled client cannot pin a worker.
//! - **Graceful degradation.** Scheduling runs the anytime ladder
//!   ([`csched_core::schedule_kernel_anytime`]): when a deadline
//!   expires mid-ladder the response is the best relaxed-II schedule
//!   completed so far, flagged `degraded=1`, instead of an error.
//! - **Corruption quarantine.** The cache journal checksums every
//!   entry. A torn final line (crash mid-append) is repaired silently;
//!   a bit-flipped interior entry is *quarantined* on load — serving
//!   continues, the key misses, is re-scheduled on its next request,
//!   and the fresh entry is re-journaled (last record wins on the next
//!   load, lifting the quarantine).
//! - **Crash consistency.** Entries are journaled (flushed, and
//!   `fsync`ed in durable mode) before the response is sent, so a
//!   `kill -9` mid-request loses only the requests in flight: a
//!   restarted server answers every previously cached key byte-for-byte
//!   identically.
//!
//! ## Wire protocol
//!
//! One request per connection, newline-framed headers with byte-counted
//! bodies:
//!
//! ```text
//! SCHED [limit=<attempts>] [wall_ms=<ms>]
//! KERNEL <len>
//! <len bytes of kernel text>
//! ARCH <len>
//! <len bytes of machine text>
//! END
//! ```
//!
//! The server replies `CACHE hit|miss`, then either
//! `OK ii=<n> copies=<n> max_registers=<n> attempts=<n> degraded=<0|1>`
//! or `ERR <kind> <detail>` with `kind` one of `overload`, `malformed`,
//! `deadline`, `sched`, `internal` — then closes the connection.
//! `STATS` on a connection of its own returns one JSON line of
//! counters.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csched_core::{
    regalloc, schedule_kernel_anytime, validate, CancelToken, RetryPolicy, SchedulerConfig,
    StepBudget, Watchdog,
};
use csched_ir::Kernel;

use crate::campaign::{cell_key, config_fingerprint, json_num_field, CampaignError, Journal};
use crate::pool::{Rejected, Service};

/// Typed failures of the serve layer (distinct from
/// [`csched_core::SchedError`]: these
/// are service problems — sockets, cache storage, protocol — not
/// scheduling ones).
#[derive(Debug)]
pub enum ServeError {
    /// Binding or accepting on the listen address failed.
    Bind {
        /// The address that could not be served.
        addr: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A socket read/write failed (client side or server side).
    Io {
        /// What was being done.
        context: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The persistent cache store failed (journal I/O).
    Cache(CampaignError),
    /// A response (client side) or request (server side) violated the
    /// wire protocol.
    Protocol {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot serve on {addr}: {source}"),
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Cache(e) => write!(f, "schedule cache: {e}"),
            ServeError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } | ServeError::Io { source, .. } => Some(source),
            ServeError::Cache(e) => Some(e),
            ServeError::Protocol { .. } => None,
        }
    }
}

/// Server tunables. `Default` is sized for tests and smoke runs; a real
/// deployment raises `jobs`/`queue_cap`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads scheduling requests.
    pub jobs: usize,
    /// Admission-queue capacity; connections beyond `jobs + queue_cap`
    /// in flight are shed with `ERR overload`.
    pub queue_cap: usize,
    /// Default per-request placement-attempt budget.
    pub step_limit: u64,
    /// Hard cap on client-requested budgets (`limit=` is clamped here).
    pub max_step_limit: u64,
    /// Server-wide wall-clock deadline per request, in milliseconds
    /// (`None` = placement-attempt budget only).
    pub wall_ms: Option<u64>,
    /// Socket read/write timeout — a stalled client cannot pin a worker
    /// longer than this.
    pub io_timeout: Duration,
    /// Maximum bytes accepted for one kernel or machine body.
    pub max_request_bytes: usize,
    /// Persistent cache journal path (`None` = in-memory cache only).
    pub cache_path: Option<PathBuf>,
    /// `fsync` each cache append (survives power loss, not just
    /// `kill -9`).
    pub durable: bool,
    /// Scheduler configuration every request runs under (part of the
    /// cache key).
    pub scheduler: SchedulerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            jobs: 4,
            queue_cap: 16,
            step_limit: 200_000,
            max_step_limit: 1 << 22,
            wall_ms: None,
            io_timeout: Duration::from_millis(5_000),
            max_request_bytes: 1 << 20,
            cache_path: None,
            durable: false,
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// One cached scheduling outcome — everything a response needs, nothing
/// machine-specific, so a warm response is a pure function of the entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// Initiation interval (0 for straight-line kernels).
    pub ii: u32,
    /// Copy operations inserted.
    pub copies: u64,
    /// Maximum register demand in any file.
    pub max_registers: u64,
    /// Placement attempts the cold schedule charged.
    pub attempts: u64,
    /// Whether the result is degraded (deadline expired mid-ladder).
    pub degraded: bool,
    /// The placement-attempt budget the entry was computed under; a
    /// degraded entry is only served warm to requests with an equal or
    /// smaller budget (a larger budget deserves a fresh, better try).
    pub limit: u64,
}

impl CacheEntry {
    /// The checksummed journal line body (sans `sum`).
    fn body(&self, key: u64) -> String {
        format!(
            "\"key\":{key},\"ii\":{},\"copies\":{},\"max_registers\":{},\"attempts\":{},\
             \"degraded\":{},\"limit\":{}",
            self.ii,
            self.copies,
            self.max_registers,
            self.attempts,
            u8::from(self.degraded),
            self.limit,
        )
    }

    /// Renders the full journal line: `{<body>,"sum":<fnv1a(body)>}`.
    fn to_line(&self, key: u64) -> String {
        let body = self.body(key);
        format!("{{{body},\"sum\":{}}}", fnv1a(body.as_bytes()))
    }

    /// Parses and checksum-verifies one journal line.
    fn parse_line(line: &str) -> Option<(u64, CacheEntry)> {
        let rest = line.strip_prefix('{')?.strip_suffix('}')?;
        let sum_at = rest.rfind(",\"sum\":")?;
        let (body, sum_text) = rest.split_at(sum_at);
        let sum: u64 = sum_text.strip_prefix(",\"sum\":")?.parse().ok()?;
        if fnv1a(body.as_bytes()) != sum {
            return None;
        }
        let entry = CacheEntry {
            ii: u32::try_from(json_num_field(body, "ii")?).ok()?,
            copies: json_num_field(body, "copies")?,
            max_registers: json_num_field(body, "max_registers")?,
            attempts: json_num_field(body, "attempts")?,
            degraded: json_num_field(body, "degraded")? != 0,
            limit: json_num_field(body, "limit")?,
        };
        Some((json_num_field(body, "key")?, entry))
    }
}

/// FNV-1a over raw bytes (the cache line checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content hash of a kernel: FNV-1a over its *canonical* textual
/// form, so semantically identical requests (same kernel, different
/// whitespace or comments) share one cache slot.
pub fn kernel_hash(kernel: &Kernel) -> u64 {
    fnv1a(csched_ir::text::print(kernel).as_bytes())
}

/// The content-addressed cache key of one request:
/// (kernel text hash × architecture structural fingerprint × scheduler
/// configuration fingerprint).
pub fn cache_key(kernel_hash: u64, arch_fingerprint: u64, config_fp: &str) -> u64 {
    cell_key(
        &format!("{kernel_hash:016x}"),
        &format!("{arch_fingerprint:016x}"),
        config_fp,
    )
}

/// What [`ScheduleCache::open`] found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheLoadReport {
    /// Entries loaded clean (checksum verified).
    pub entries: usize,
    /// Keys quarantined: their newest journal line was corrupt.
    pub quarantined: usize,
    /// Corrupt (checksum-failing or unparseable) lines seen, including
    /// ones whose key could not be recovered.
    pub corrupt_lines: usize,
    /// Bytes of torn tail (crash mid-append) repaired on open.
    pub repaired_bytes: u64,
}

/// The content-addressed schedule cache: an in-memory map backed by a
/// checksummed, append-only journal (reusing the campaign
/// [`Journal`]'s open/repair/flush machinery).
#[derive(Debug)]
pub struct ScheduleCache {
    map: HashMap<u64, CacheEntry>,
    /// Keys whose newest journal line failed its checksum: known to
    /// exist but untrusted, so they miss until re-scheduled.
    quarantined: HashSet<u64>,
    journal: Option<Journal>,
    corrupt_lines: usize,
    repaired_bytes: u64,
}

impl ScheduleCache {
    /// Opens (or creates) the cache. Corrupt entries are quarantined and
    /// reported, never fatal: a served cache heals by re-scheduling.
    ///
    /// # Errors
    ///
    /// Only journal I/O ([`CampaignError::Io`] /
    /// [`CampaignError::Unwritable`]); corruption is *not* an error.
    pub fn open(
        path: Option<&Path>,
        durable: bool,
    ) -> Result<(ScheduleCache, CacheLoadReport), CampaignError> {
        let mut cache = ScheduleCache {
            map: HashMap::new(),
            quarantined: HashSet::new(),
            journal: None,
            corrupt_lines: 0,
            repaired_bytes: 0,
        };
        let Some(path) = path else {
            return Ok((cache, CacheLoadReport::default()));
        };
        if path.exists() {
            let text = std::fs::read_to_string(path).map_err(|source| CampaignError::Io {
                path: path.to_path_buf(),
                operation: "read",
                source,
            })?;
            let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
            for (idx, line) in lines.iter().enumerate() {
                match CacheEntry::parse_line(line) {
                    Some((key, entry)) => {
                        // Last record wins: a re-journaled entry lifts an
                        // earlier quarantine of the same key.
                        cache.map.insert(key, entry);
                        cache.quarantined.remove(&key);
                    }
                    None if idx == lines.len() - 1 && !text.ends_with('\n') => {
                        // Torn tail: the crash arrived mid-append; the
                        // journal open below truncates it away.
                    }
                    None => {
                        cache.corrupt_lines += 1;
                        // Quarantine the key if it is still legible, so
                        // the bit-flipped payload is never served.
                        if let Some(key) = json_num_field(line, "key") {
                            cache.map.remove(&key);
                            cache.quarantined.insert(key);
                        }
                    }
                }
            }
        }
        let mut journal = if durable {
            Journal::open_durable(path)?
        } else {
            Journal::open(path)?
        };
        journal.set_durable(durable);
        cache.repaired_bytes = journal.repaired_bytes();
        cache.journal = Some(journal);
        let report = CacheLoadReport {
            entries: cache.map.len(),
            quarantined: cache.quarantined.len(),
            corrupt_lines: cache.corrupt_lines,
            repaired_bytes: cache.repaired_bytes,
        };
        Ok((cache, report))
    }

    /// Looks up a warm entry usable for a request budgeted at `limit`.
    ///
    /// Quarantined keys always miss. A degraded entry is served only to
    /// an equal-or-smaller budget; a request with more budget than the
    /// degraded entry had deserves a fresh attempt at a better answer.
    pub fn lookup(&self, key: u64, limit: u64) -> Option<&CacheEntry> {
        if self.quarantined.contains(&key) {
            return None;
        }
        self.map
            .get(&key)
            .filter(|e| !e.degraded || e.limit >= limit)
    }

    /// Inserts and journals an entry (journaled *before* it is visible,
    /// so a response is only ever sent for a durably recorded entry).
    /// Re-inserting a quarantined key lifts the quarantine.
    pub fn insert(&mut self, key: u64, entry: CacheEntry) -> Result<(), CampaignError> {
        if let Some(journal) = self.journal.as_mut() {
            journal.append_line(&entry.to_line(key))?;
        }
        self.quarantined.remove(&key);
        self.map.insert(key, entry);
        Ok(())
    }

    /// Cached entries currently servable.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Keys currently quarantined (corrupt on disk, awaiting
    /// re-scheduling).
    pub fn quarantined(&self) -> usize {
        self.quarantined.len()
    }
}

/// Monotonic service counters, exported by `STATS`.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted (including shed ones).
    pub requests: AtomicU64,
    /// Requests answered `OK`.
    pub ok: AtomicU64,
    /// Warm cache hits.
    pub hits: AtomicU64,
    /// Cold misses that went to the scheduler.
    pub misses: AtomicU64,
    /// Connections shed by admission control.
    pub shed: AtomicU64,
    /// Requests rejected as malformed (parse error, framing error,
    /// oversized body, read timeout).
    pub malformed: AtomicU64,
    /// Requests whose deadline expired with nothing to return.
    pub deadline: AtomicU64,
    /// Requests that failed with a typed scheduling error.
    pub sched_errors: AtomicU64,
    /// `OK` responses that were degraded (best-so-far under an expired
    /// deadline).
    pub degraded: AtomicU64,
    /// Internal failures (cache I/O, invariant breaks).
    pub internal_errors: AtomicU64,
}

struct ServerState {
    config: ServeConfig,
    config_fp: String,
    stats: ServeStats,
    cache: Mutex<ScheduleCache>,
    watchdog: Watchdog,
}

impl ServerState {
    /// One deterministic JSON line of counters and cache state.
    fn stats_json(&self) -> String {
        let s = &self.stats;
        let (entries, quarantined, corrupt, repaired) = match self.cache.lock() {
            Ok(cache) => (
                cache.len(),
                cache.quarantined(),
                cache.corrupt_lines,
                cache.repaired_bytes,
            ),
            Err(_) => (0, 0, 0, 0),
        };
        format!(
            "{{\"serve\":{{\"requests\":{},\"ok\":{},\"hits\":{},\"misses\":{},\"shed\":{},\
             \"malformed\":{},\"deadline\":{},\"sched_errors\":{},\"degraded\":{},\
             \"internal_errors\":{},\"cache\":{{\"entries\":{entries},\
             \"quarantined\":{quarantined},\"corrupt_lines\":{corrupt},\
             \"repaired_bytes\":{repaired}}}}}}}",
            s.requests.load(Ordering::Relaxed),
            s.ok.load(Ordering::Relaxed),
            s.hits.load(Ordering::Relaxed),
            s.misses.load(Ordering::Relaxed),
            s.shed.load(Ordering::Relaxed),
            s.malformed.load(Ordering::Relaxed),
            s.deadline.load(Ordering::Relaxed),
            s.sched_errors.load(Ordering::Relaxed),
            s.degraded.load(Ordering::Relaxed),
            s.internal_errors.load(Ordering::Relaxed),
        )
    }
}

/// A running server: accepted connections flow through admission control
/// onto the worker pool until [`shutdown`](Server::shutdown).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound,
    /// [`ServeError::Cache`] when the cache journal cannot be opened.
    pub fn bind(addr: &str, config: ServeConfig) -> Result<(Server, CacheLoadReport), ServeError> {
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        Server::start(listener, config)
    }

    /// Starts serving on an already bound listener.
    ///
    /// # Errors
    ///
    /// [`ServeError::Cache`] when the cache journal cannot be opened;
    /// [`ServeError::Bind`] when the listener's address cannot be read.
    pub fn start(
        listener: TcpListener,
        config: ServeConfig,
    ) -> Result<(Server, CacheLoadReport), ServeError> {
        let addr = listener.local_addr().map_err(|source| ServeError::Bind {
            addr: "<unbound listener>".to_string(),
            source,
        })?;
        let (cache, load_report) =
            ScheduleCache::open(config.cache_path.as_deref(), config.durable)
                .map_err(ServeError::Cache)?;
        let config_fp = config_fingerprint(&config.scheduler, 0);
        let state = Arc::new(ServerState {
            config,
            config_fp,
            stats: ServeStats::default(),
            cache: Mutex::new(cache),
            watchdog: Watchdog::new(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let worker_state = Arc::clone(&accept_state);
            let pool = Service::new(
                accept_state.config.jobs,
                accept_state.config.queue_cap,
                move |_, stream: TcpStream| handle_connection(&worker_state, &stream),
            );
            loop {
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => continue,
                };
                if accept_stop.load(Ordering::Acquire) {
                    break; // the shutdown self-connection
                }
                accept_state.stats.requests.fetch_add(1, Ordering::Relaxed);
                configure_stream(&stream, accept_state.config.io_timeout);
                if let Err(Rejected(stream)) = pool.try_submit(stream) {
                    // Admission queue full: shed with a typed response.
                    // A short detached thread writes it, half-closes, and
                    // drains the client's unread bytes (dropping them
                    // unread would RST the response away); each is
                    // bounded by the socket timeouts, and the acceptor
                    // itself never blocks on a shed client.
                    accept_state.stats.shed.fetch_add(1, Ordering::Relaxed);
                    std::thread::spawn(move || {
                        let mut stream = stream;
                        let _ = stream.write_all(b"ERR overload admission queue full\n");
                        let _ = stream.shutdown(std::net::Shutdown::Write);
                        let mut sink = [0u8; 1024];
                        while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0)
                        {
                        }
                    });
                }
            }
            // Dropping the pool drains admitted connections and joins
            // the workers: graceful shutdown never abandons admitted
            // work.
        });
        Ok((
            Server {
                addr,
                state,
                stop,
                accept_thread: Some(accept_thread),
            },
            load_report,
        ))
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The stats JSON line, as `STATS` would return it.
    pub fn stats_json(&self) -> String {
        self.state.stats_json()
    }

    /// Stops accepting, drains admitted requests, and joins every
    /// thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor with a self-connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

fn configure_stream(stream: &TcpStream, timeout: Duration) {
    // A failure to arm a timeout is not fatal — the budget and watchdog
    // still bound the request — so errors are deliberately ignored.
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
}

/// Reads one `\n`-terminated header line of at most `max` bytes.
/// Returns `Ok(None)` at EOF before any byte.
fn read_header_line(
    reader: &mut impl BufRead,
    max: usize,
) -> Result<Option<String>, std::io::Error> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ))
            };
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            break;
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        reader.consume(n);
        if line.len() > max {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "header line too long",
            ));
        }
    }
    if line.len() > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "header line too long",
        ));
    }
    Ok(Some(String::from_utf8_lossy(&line).into_owned()))
}

/// How one request ended, for the stats counters.
enum Outcome {
    OkWarm,
    OkCold {
        degraded: bool,
    },
    /// A `STATS` request: counted as a request, not a schedule.
    Stats,
    Malformed,
    Deadline,
    Sched,
    Internal,
}

/// Flattens a detail message onto one response line.
fn one_line(detail: &str) -> String {
    detail.replace(['\n', '\r'], "; ")
}

fn respond(stream: &TcpStream, text: &str) -> Result<(), std::io::Error> {
    let mut stream = stream;
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

/// The deterministic `OK` line for an entry — used identically for cold
/// and warm responses, so a warm hit is byte-for-byte the cold answer.
fn ok_line(entry: &CacheEntry) -> String {
    format!(
        "OK ii={} copies={} max_registers={} attempts={} degraded={}\n",
        entry.ii,
        entry.copies,
        entry.max_registers,
        entry.attempts,
        u8::from(entry.degraded),
    )
}

fn handle_connection(state: &ServerState, stream: &TcpStream) {
    let outcome = serve_one(state, stream);
    let s = &state.stats;
    match outcome {
        Outcome::OkWarm => {
            s.ok.fetch_add(1, Ordering::Relaxed);
            s.hits.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::OkCold { degraded } => {
            s.ok.fetch_add(1, Ordering::Relaxed);
            s.misses.fetch_add(1, Ordering::Relaxed);
            if degraded {
                s.degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
        Outcome::Stats => {}
        Outcome::Malformed => {
            s.malformed.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::Deadline => {
            s.deadline.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::Sched => {
            s.sched_errors.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::Internal => {
            s.internal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn serve_one(state: &ServerState, stream: &TcpStream) -> Outcome {
    let mut reader = BufReader::new(stream);
    let header = match read_header_line(&mut reader, 256) {
        Ok(Some(h)) => h,
        Ok(None) => {
            let _ = respond(stream, "ERR malformed empty request\n");
            return Outcome::Malformed;
        }
        Err(e) => {
            let _ = respond(stream, &format!("ERR malformed request read failed: {e}\n"));
            return Outcome::Malformed;
        }
    };
    let mut words = header.split_whitespace();
    match words.next() {
        Some("STATS") => {
            let _ = respond(stream, &format!("{}\n", state.stats_json()));
            Outcome::Stats
        }
        Some("SCHED") => serve_sched(state, &mut reader, stream, words),
        Some(other) => {
            let _ = respond(
                stream,
                &format!("ERR malformed unknown command {}\n", one_line(other)),
            );
            Outcome::Malformed
        }
        None => {
            let _ = respond(stream, "ERR malformed empty request\n");
            Outcome::Malformed
        }
    }
}

/// Reads one `NAME <len>` section header plus its body.
fn read_section(reader: &mut impl BufRead, name: &str, max: usize) -> Result<String, String> {
    let header = match read_header_line(reader, 256) {
        Ok(Some(h)) => h,
        Ok(None) => return Err(format!("missing {name} section")),
        Err(e) => return Err(format!("reading {name} header: {e}")),
    };
    let mut words = header.split_whitespace();
    if words.next() != Some(name) {
        return Err(format!(
            "expected {name} section, got {}",
            one_line(&header)
        ));
    }
    let len: usize = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("{name} section needs a byte length"))?;
    if len > max {
        return Err(format!(
            "{name} section of {len} bytes exceeds the {max}-byte cap"
        ));
    }
    let mut body = vec![0u8; len];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading {name} body: {e}"))?;
    String::from_utf8(body).map_err(|_| format!("{name} body is not UTF-8"))
}

fn serve_sched<'a>(
    state: &ServerState,
    reader: &mut impl BufRead,
    stream: &TcpStream,
    options: impl Iterator<Item = &'a str>,
) -> Outcome {
    // Request options.
    let mut limit = state.config.step_limit;
    let mut wall_ms = state.config.wall_ms;
    for opt in options {
        if let Some(v) = opt.strip_prefix("limit=") {
            match v.parse::<u64>() {
                Ok(v) => limit = v,
                Err(_) => {
                    let _ = respond(stream, "ERR malformed bad limit= value\n");
                    return Outcome::Malformed;
                }
            }
        } else if let Some(v) = opt.strip_prefix("wall_ms=") {
            match v.parse::<u64>() {
                // The request may tighten the server deadline, never
                // widen it.
                Ok(v) => wall_ms = Some(wall_ms.map_or(v, |server| server.min(v))),
                Err(_) => {
                    let _ = respond(stream, "ERR malformed bad wall_ms= value\n");
                    return Outcome::Malformed;
                }
            }
        } else {
            let _ = respond(
                stream,
                &format!("ERR malformed unknown option {}\n", one_line(opt)),
            );
            return Outcome::Malformed;
        }
    }
    // max(1) guards a misconfigured zero cap: clamp panics if min > max.
    let limit = limit.clamp(1, state.config.max_step_limit.max(1));

    // Bodies.
    let max = state.config.max_request_bytes;
    let kernel_text = match read_section(reader, "KERNEL", max) {
        Ok(t) => t,
        Err(detail) => {
            let _ = respond(stream, &format!("ERR malformed {}\n", one_line(&detail)));
            return Outcome::Malformed;
        }
    };
    let arch_text = match read_section(reader, "ARCH", max) {
        Ok(t) => t,
        Err(detail) => {
            let _ = respond(stream, &format!("ERR malformed {}\n", one_line(&detail)));
            return Outcome::Malformed;
        }
    };
    match read_header_line(reader, 256) {
        Ok(Some(end)) if end.trim() == "END" => {}
        Ok(_) | Err(_) => {
            let _ = respond(stream, "ERR malformed missing END\n");
            return Outcome::Malformed;
        }
    }

    // Parse both wire payloads with spanned errors.
    let kernel = match csched_ir::text::parse(&kernel_text) {
        Ok(k) => k,
        Err(e) => {
            let _ = respond(
                stream,
                &format!("ERR malformed kernel: {}\n", one_line(&e.to_string())),
            );
            return Outcome::Malformed;
        }
    };
    let arch = match csched_machine::text::parse(&arch_text) {
        Ok(a) => a,
        Err(e) => {
            let _ = respond(
                stream,
                &format!("ERR malformed machine: {}\n", one_line(&e.to_string())),
            );
            return Outcome::Malformed;
        }
    };

    let key = cache_key(kernel_hash(&kernel), arch.fingerprint(), &state.config_fp);

    // Warm path: serve straight from the cache.
    {
        let Ok(cache) = state.cache.lock() else {
            let _ = respond(stream, "ERR internal cache lock poisoned\n");
            return Outcome::Internal;
        };
        if let Some(entry) = cache.lookup(key, limit) {
            let line = ok_line(entry);
            drop(cache);
            let _ = respond(stream, &format!("CACHE hit\n{line}"));
            return Outcome::OkWarm;
        }
    }

    // Cold path: schedule under the request deadline.
    let token = CancelToken::new();
    let budget = StepBudget::new(limit).with_cancel(token.clone());
    let _guard = wall_ms.map(|ms| {
        state
            .watchdog
            .watch(token.clone(), Instant::now() + Duration::from_millis(ms))
    });
    let (result, report) = schedule_kernel_anytime(
        &arch,
        &kernel,
        state.config.scheduler.clone(),
        &RetryPolicy::default(),
        &budget,
    );
    match result {
        Ok(schedule) => {
            if let Err(violations) = validate::validate(&arch, &kernel, &schedule) {
                let detail = violations
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ");
                let _ = respond(
                    stream,
                    &format!("ERR internal invalid schedule: {}\n", one_line(&detail)),
                );
                return Outcome::Internal;
            }
            let entry = CacheEntry {
                ii: schedule.ii().unwrap_or(0),
                copies: schedule.num_copies() as u64,
                max_registers: regalloc::analyze(&arch, &kernel, &schedule).max_required() as u64,
                attempts: report.attempts_spent,
                degraded: report.degraded,
                limit,
            };
            // Journal before responding: a response is only ever sent
            // for a durably recorded entry, so a crash immediately after
            // the response still serves this key warm on restart.
            {
                let Ok(mut cache) = state.cache.lock() else {
                    let _ = respond(stream, "ERR internal cache lock poisoned\n");
                    return Outcome::Internal;
                };
                if let Err(e) = cache.insert(key, entry.clone()) {
                    drop(cache);
                    let _ = respond(
                        stream,
                        &format!("ERR internal cache append: {}\n", one_line(&e.to_string())),
                    );
                    return Outcome::Internal;
                }
            }
            let _ = respond(stream, &format!("CACHE miss\n{}", ok_line(&entry)));
            Outcome::OkCold {
                degraded: entry.degraded,
            }
        }
        Err(e) if e.is_budget_stop() => {
            let _ = respond(
                stream,
                &format!("ERR deadline {}\n", one_line(&e.to_string())),
            );
            Outcome::Deadline
        }
        Err(e) => {
            let _ = respond(stream, &format!("ERR sched {}\n", one_line(&e.to_string())));
            Outcome::Sched
        }
    }
}

// ---------------------------------------------------------------------
// Client helpers (used by the `serve` binary, the CI smoke script, and
// the robustness tests).
// ---------------------------------------------------------------------

/// Sends one `SCHED` request and returns the server's full response
/// text (both lines on success, the `ERR` line on failure).
///
/// # Errors
///
/// [`ServeError::Io`] when the connection fails or times out.
pub fn client_request(
    addr: &str,
    kernel_text: &str,
    arch_text: &str,
    limit: Option<u64>,
    wall_ms: Option<u64>,
    timeout: Duration,
) -> Result<String, ServeError> {
    let mut request = String::from("SCHED");
    if let Some(limit) = limit {
        request.push_str(&format!(" limit={limit}"));
    }
    if let Some(wall) = wall_ms {
        request.push_str(&format!(" wall_ms={wall}"));
    }
    request.push('\n');
    request.push_str(&format!("KERNEL {}\n", kernel_text.len()));
    request.push_str(kernel_text);
    request.push_str(&format!("ARCH {}\n", arch_text.len()));
    request.push_str(arch_text);
    request.push_str("END\n");
    client_raw(addr, request.as_bytes(), timeout)
}

/// Sends `STATS` and returns the JSON line.
///
/// # Errors
///
/// [`ServeError::Io`] when the connection fails or times out.
pub fn client_stats(addr: &str, timeout: Duration) -> Result<String, ServeError> {
    client_raw(addr, b"STATS\n", timeout).map(|s| s.trim_end().to_string())
}

/// Sends raw request bytes and reads the response to EOF — the hook for
/// malformed-request testing.
///
/// # Errors
///
/// [`ServeError::Io`] when the connection fails or times out.
pub fn client_raw(addr: &str, request: &[u8], timeout: Duration) -> Result<String, ServeError> {
    let io = |context: &'static str| move |source| ServeError::Io { context, source };
    let mut stream = TcpStream::connect(addr).map_err(io("connect"))?;
    configure_stream(&stream, timeout);
    stream.write_all(request).map_err(io("send request"))?;
    // Half-close so a server reading to EOF is never stuck on us.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(io("read response"))?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ii: u32) -> CacheEntry {
        CacheEntry {
            ii,
            copies: 3,
            max_registers: 9,
            attempts: 1234,
            degraded: false,
            limit: 200_000,
        }
    }

    #[test]
    fn cache_line_round_trips_and_checksum_rejects_bit_flips() {
        let e = entry(7);
        let line = e.to_line(42);
        assert_eq!(CacheEntry::parse_line(&line), Some((42, e)));
        // Flip one payload character: the checksum must reject it.
        let flipped = line.replacen("\"ii\":7", "\"ii\":9", 1);
        assert_ne!(flipped, line);
        assert_eq!(CacheEntry::parse_line(&flipped), None);
        // Corrupt the checksum itself: also rejected.
        let broken_sum = line.replacen("\"sum\":", "\"sum\":1", 1);
        assert_eq!(CacheEntry::parse_line(&broken_sum), None);
    }

    #[test]
    fn cache_load_quarantines_corrupt_entries_and_heals_on_insert() {
        let dir = std::env::temp_dir().join(format!("csched-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let (mut cache, report) = ScheduleCache::open(Some(&path), false).unwrap();
            assert_eq!(report, CacheLoadReport::default());
            cache.insert(1, entry(4)).unwrap();
            cache.insert(2, entry(6)).unwrap();
        }
        // Bit-flip the first (interior) entry on disk.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[0] = lines[0].replacen("\"ii\":4", "\"ii\":5", 1);
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

        let (mut cache, report) = ScheduleCache::open(Some(&path), false).unwrap();
        assert_eq!(report.entries, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.corrupt_lines, 1);
        assert!(cache.lookup(1, 1).is_none(), "corrupt entry must not serve");
        assert_eq!(cache.lookup(2, 1), Some(&entry(6)));

        // Re-scheduling the key re-journals it and lifts the quarantine…
        cache.insert(1, entry(4)).unwrap();
        assert_eq!(cache.quarantined(), 0);
        assert_eq!(cache.lookup(1, 1), Some(&entry(4)));
        drop(cache);

        // …and the *next* load sees the healed entry (last record wins
        // over the still-present corrupt line).
        let (cache, report) = ScheduleCache::open(Some(&path), false).unwrap();
        assert_eq!(report.entries, 2);
        assert_eq!(report.quarantined, 0);
        assert_eq!(
            report.corrupt_lines, 1,
            "the old corrupt line is still counted"
        );
        assert_eq!(cache.lookup(1, 1), Some(&entry(4)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_repaired_not_quarantined() {
        let dir = std::env::temp_dir().join(format!("csched-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let (mut cache, _) = ScheduleCache::open(Some(&path), false).unwrap();
            cache.insert(1, entry(4)).unwrap();
        }
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"key\":2,\"ii\":9").unwrap(); // no newline: torn
        }
        let (cache, report) = ScheduleCache::open(Some(&path), false).unwrap();
        assert_eq!(report.entries, 1);
        assert_eq!(report.quarantined, 0, "a torn tail is not corruption");
        assert_eq!(report.corrupt_lines, 0);
        assert!(report.repaired_bytes > 0);
        assert_eq!(cache.lookup(1, 1), Some(&entry(4)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn degraded_entries_only_serve_equal_or_smaller_budgets() {
        let (mut cache, _) = ScheduleCache::open(None, false).unwrap();
        let degraded = CacheEntry {
            degraded: true,
            limit: 1_000,
            ..entry(8)
        };
        cache.insert(5, degraded.clone()).unwrap();
        assert_eq!(cache.lookup(5, 1_000), Some(&degraded));
        assert_eq!(cache.lookup(5, 500), Some(&degraded));
        assert!(
            cache.lookup(5, 2_000).is_none(),
            "a bigger budget deserves a fresh, better attempt"
        );
        // Full-quality entries serve any budget.
        cache.insert(6, entry(3)).unwrap();
        assert!(cache.lookup(6, u64::MAX).is_some());
    }

    #[test]
    fn kernel_hash_is_whitespace_insensitive_via_canonical_text() {
        let w = csched_kernels::by_name("Merge").unwrap();
        let canonical = csched_ir::text::print(&w.kernel);
        let reparsed = csched_ir::text::parse(&canonical).unwrap();
        assert_eq!(kernel_hash(&w.kernel), kernel_hash(&reparsed));
    }

    #[test]
    fn cache_key_separates_kernel_arch_and_config() {
        let fp_a = "cfg-a";
        let fp_b = "cfg-b";
        assert_ne!(cache_key(1, 2, fp_a), cache_key(1, 3, fp_a));
        assert_ne!(cache_key(1, 2, fp_a), cache_key(2, 2, fp_a));
        assert_ne!(cache_key(1, 2, fp_a), cache_key(1, 2, fp_b));
    }
}
