//! # csched-eval — evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! - [`grid::run_grid`] schedules the Table 1 kernels on the four Imagine
//!   register-file organisations, validates and simulates every schedule,
//!   and produces the Figure 28 per-kernel speedups and the Figure 29
//!   overall (geometric-mean) speedup;
//! - [`costs`] reproduces the Figures 25–27 area/power/delay bars, the
//!   §1/§8 headline ratios, and the §8 scaling projection;
//! - [`report`] renders everything as plain-text tables;
//! - the `paper-report` binary runs the full evaluation in one shot.

#![warn(missing_docs)]
// The evaluation harness reports typed failures per cell; outside of test
// code, potential panics must become `CampaignError`/`GridError` (or a
// recorded Failed cell) rather than unwrapped.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod bench;
pub mod campaign;
pub mod costs;
pub mod grid;
pub mod report;

pub use bench::{
    bench_json, compare, deterministic_json, measure_cell, parse_bench_json, run_bench, BenchCell,
    BenchParseError, BenchReport, CompareReport,
};
pub use campaign::{
    campaign_json, cell_key, config_fingerprint, grid_from_records, run_campaign, CampaignError,
    CampaignResult, CellRecord, CellStatus, Journal,
};
pub use grid::{run_grid, Grid, GridError};
