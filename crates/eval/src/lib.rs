//! # csched-eval — evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! - [`grid::run_grid`] schedules the Table 1 kernels on the four Imagine
//!   register-file organisations, validates and simulates every schedule,
//!   and produces the Figure 28 per-kernel speedups and the Figure 29
//!   overall (geometric-mean) speedup;
//! - [`costs`] reproduces the Figures 25–27 area/power/delay bars, the
//!   §1/§8 headline ratios, and the §8 scaling projection;
//! - [`report`] renders everything as plain-text tables;
//! - [`mod@explore`] searches a parameterised design space around the four
//!   paper machines on a multi-threaded worker pool ([`pool`]) and
//!   reports the Pareto frontier over (harmonic-mean II, area, power,
//!   delay), with journal-backed resume;
//! - the `paper-report` binary runs the full evaluation in one shot and
//!   the `explore` binary runs the design-space search;
//! - [`serve`] turns the scheduler into a hardened long-running service:
//!   bounded admission with typed load shedding, per-request deadlines
//!   with graceful degradation, slowloris read-phase budgets, journal
//!   compaction with a disk-full serve-from-memory latch, and a
//!   crash-consistent checksummed schedule cache that quarantines
//!   corrupt entries (the `serve` binary hosts it);
//! - [`chaosnet`] is a deterministic fault-injecting TCP proxy (seeded
//!   disconnects, torn writes, slowloris drips, response truncation,
//!   latency) used by the `soak` binary to hammer the service through a
//!   hostile network and assert its invariants survive;
//! - [`gap`] runs the heuristic and the exact oracle
//!   ([`csched_core::exact`]) side by side across the paper grid (plus a
//!   seeded explore subsample), journals each cell, and reports the
//!   optimality gap per cell (the `oracle` binary drives it);
//! - [`telemetry`] gives the service per-request structured spans,
//!   deterministic log-bucketed latency/attempts histograms, and the
//!   renderings behind the `METRICS` (JSON + Prometheus exposition) and
//!   `TRACE` (wire-streamed JSONL decision events) verbs; the `dash`
//!   binary polls them into a live terminal dashboard.

#![warn(missing_docs)]
// The evaluation harness reports typed failures per cell; outside of test
// code, potential panics must become `CampaignError`/`GridError` (or a
// recorded Failed cell) rather than unwrapped.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod bench;
pub mod campaign;
pub mod chaosnet;
pub mod costs;
pub mod explore;
pub mod gap;
pub mod grid;
pub mod pool;
pub mod report;
pub mod serve;
pub mod telemetry;

pub use bench::{
    bench_json, compare, deterministic_json, measure_cell, parse_bench_json, run_bench,
    run_bench_jobs, BenchCell, BenchParseError, BenchReport, CompareReport,
};
pub use campaign::{
    campaign_json, cell_key, config_fingerprint, grid_from_records, run_campaign,
    run_campaign_jobs, CampaignError, CampaignResult, CellRecord, CellStatus, Journal,
};
pub use chaosnet::{ChaosNetConfig, ChaosProxy, FaultAction, FaultKind, FaultRecord};
pub use explore::{explore, pareto, CandidateReport, ExploreConfig, ExploreReport, Origin, Score};
pub use gap::{
    gap_cells, gap_fingerprint, gap_json, gap_table, load_gap_journal, measure_gap_cell, run_gap,
    run_gap_over, GapCell, GapConfig, GapRecord, GapReport,
};
pub use grid::{run_grid, Grid, GridError};
pub use pool::{run_indexed, Rejected, Service};
pub use serve::{
    cache_key, client_metrics, client_raw, client_request, client_request_retry, client_stats,
    client_trace, kernel_hash, response_complete, response_retryable, CacheEntry, CacheLoadReport,
    CompactionPolicy, RetryConfig, RetryReport, ScheduleCache, ServeConfig, ServeError, ServeStats,
    Server,
};
pub use telemetry::{
    validate_prometheus, CacheDisposition, Histogram, MetricsSnapshot, Outcome, RequestSpan,
    SpanSummary, StageTimes, Telemetry, TraceCapture, METRICS_SCHEMA,
};
