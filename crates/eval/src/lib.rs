//! # csched-eval — evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! - [`grid::run_grid`] schedules the Table 1 kernels on the four Imagine
//!   register-file organisations, validates and simulates every schedule,
//!   and produces the Figure 28 per-kernel speedups and the Figure 29
//!   overall (geometric-mean) speedup;
//! - [`costs`] reproduces the Figures 25–27 area/power/delay bars, the
//!   §1/§8 headline ratios, and the §8 scaling projection;
//! - [`report`] renders everything as plain-text tables;
//! - the `paper-report` binary runs the full evaluation in one shot.

#![warn(missing_docs)]

pub mod costs;
pub mod grid;
pub mod report;

pub use grid::{run_grid, Grid, GridError};
