//! Heuristic-vs-exact optimality-gap reports.
//!
//! The exact oracle ([`csched_core::exact`]) certifies the *minimum* II
//! of a cell; this pass runs heuristic and oracle side by side across
//! the paper grid (ten Table 1 kernels × four Imagine register-file
//! organisations) plus an optional seeded subsample of the explore
//! design family, and reports the optimality gap per cell:
//!
//! - `certified` with `gap = 0`: the heuristic's II is provably optimal;
//! - `certified` with `gap > 0`: the heuristic left cycles on the table
//!   — these cells are the mining ground for new retry-ladder rungs;
//! - `gap_unknown`: the oracle's step budget ran out first (large
//!   kernels are expected to land here);
//! - `disagreement`: the oracle certified a *larger* II than a schedule
//!   the validator accepted — a soundness bug in one of the two, and the
//!   reason the `oracle` binary exits nonzero on it.
//!
//! Like the table1 campaign, the pass journals each finished cell to a
//! JSONL file (flushed per line, torn-tail tolerant) so a killed run
//! resumes without recomputation, and the rendered report is
//! byte-identical whether it was computed fresh, resumed, or replayed
//! entirely from the journal.

use std::collections::HashMap;
use std::path::Path;

use csched_core::exact::{certify_min_ii, ExactConfig};
use csched_core::{schedule_kernel_budgeted, SchedulerConfig, StepBudget};
use csched_ir::Kernel;
use csched_machine::gen::{DesignSpace, Rng};
use csched_machine::{imagine, Architecture};

use crate::campaign::{cell_key, json_num_field, json_str_field, CampaignError, Journal};

/// Configuration of one gap campaign.
#[derive(Clone, Debug)]
pub struct GapConfig {
    /// Oracle search-space parameters.
    pub exact: ExactConfig,
    /// Step budget for the heuristic schedule of each cell.
    pub heuristic_step_limit: u64,
    /// Step budget for the oracle search of each cell (exhausting it
    /// records `gap_unknown`).
    pub exact_step_limit: u64,
    /// Number of seeded explore-family machines appended to the paper
    /// grid (each paired with the smallest Table 1 kernel, `Merge`).
    pub explore_sample: usize,
    /// Seed for the explore subsample.
    pub seed: u64,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            exact: ExactConfig::default(),
            heuristic_step_limit: 400_000,
            exact_step_limit: 2_000_000,
            explore_sample: 0,
            seed: 2000,
        }
    }
}

/// A deterministic fingerprint of everything that affects a cell's gap
/// record; folded into the journal key so a journal written under one
/// configuration is never resumed under another.
pub fn gap_fingerprint(cfg: &GapConfig) -> String {
    format!(
        "gap-v1 hsl={} xsl={} maxii={} ws={} sh={} copies={} cs={} ac={}",
        cfg.heuristic_step_limit,
        cfg.exact_step_limit,
        cfg.exact.max_ii,
        cfg.exact.window_slack,
        cfg.exact.straight_horizon,
        cfg.exact.max_copies,
        cfg.exact.copy_slack,
        cfg.exact.allow_copies,
    )
}

/// The outcome of one gap cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GapRecord {
    /// Kernel name.
    pub kernel: String,
    /// Architecture name (paper machine or explore-point label).
    pub arch: String,
    /// `certified`, `gap_unknown`, `infeasible`, `disagreement`, or
    /// `error`.
    pub status: String,
    /// The heuristic's II (0 for loop-less kernels), or `None` when the
    /// heuristic failed.
    pub heuristic_ii: Option<u64>,
    /// The certified minimum II, when the verdict is `certified`.
    pub exact_ii: Option<u64>,
    /// The II lower bound the oracle started from.
    pub mii: u64,
    /// Total oracle search nodes expanded.
    pub nodes: u64,
    /// Error or verdict detail (empty when uneventful).
    pub detail: String,
}

impl GapRecord {
    /// The optimality gap `heuristic − exact`, when both sides are known.
    /// Negative only for `disagreement` records.
    pub fn gap(&self) -> Option<i64> {
        match (self.heuristic_ii, self.exact_ii) {
            (Some(h), Some(x)) => Some(h as i64 - x as i64),
            _ => None,
        }
    }

    fn json_fields(&self) -> String {
        use csched_core::trace::json_escape;
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
        format!(
            "\"kernel\":\"{}\",\"arch\":\"{}\",\"status\":\"{}\",\
             \"heuristic_ii\":{},\"exact_ii\":{},\"mii\":{},\"nodes\":{},\"detail\":\"{}\"",
            json_escape(&self.kernel),
            json_escape(&self.arch),
            json_escape(&self.status),
            opt(self.heuristic_ii),
            opt(self.exact_ii),
            self.mii,
            self.nodes,
            json_escape(&self.detail),
        )
    }
}

/// Result of [`run_gap`].
#[derive(Clone, Debug)]
pub struct GapReport {
    /// One record per cell, in enumeration order (paper grid
    /// kernel-major, then explore cells in sample order).
    pub records: Vec<GapRecord>,
    /// Cells satisfied from the resume journal instead of recomputed.
    pub resumed: usize,
}

impl GapReport {
    /// Records whose heuristic II is provably not optimal.
    pub fn nonzero_gaps(&self) -> Vec<&GapRecord> {
        self.records
            .iter()
            .filter(|r| r.status == "certified" && r.gap().is_some_and(|g| g > 0))
            .collect()
    }

    /// Records where the oracle certified a *larger* II than the
    /// validated heuristic schedule — a soundness bug.
    pub fn disagreements(&self) -> Vec<&GapRecord> {
        self.records
            .iter()
            .filter(|r| r.status == "disagreement")
            .collect()
    }
}

/// One cell of a gap campaign: a named architecture and the kernel to
/// certify on it.
pub struct GapCell {
    /// The machine.
    pub arch: Architecture,
    /// The kernel.
    pub kernel: Kernel,
}

/// The default cell list: the full paper grid (ten kernels × four
/// Imagine organisations), plus `cfg.explore_sample` seeded
/// explore-family machines each paired with `Merge` (the smallest Table
/// 1 kernel — explore points are certified where the search is
/// tractable).
pub fn gap_cells(cfg: &GapConfig) -> Vec<GapCell> {
    let mut cells = Vec::new();
    for w in csched_kernels::all() {
        for arch in imagine::all_variants() {
            cells.push(GapCell {
                arch,
                kernel: w.kernel.clone(),
            });
        }
    }
    if cfg.explore_sample > 0 {
        if let Some(merge) = csched_kernels::by_name("Merge") {
            let space = DesignSpace::default();
            let mut rng = Rng::new(cfg.seed);
            let mut found = 0usize;
            // Sampling can yield unbuildable points; bound the retries so
            // a degenerate space cannot loop forever.
            for _ in 0..cfg.explore_sample * 16 {
                if found == cfg.explore_sample {
                    break;
                }
                let Some(point) = space.sample(&mut rng) else {
                    continue;
                };
                let Ok(arch) = point.build() else {
                    continue;
                };
                cells.push(GapCell {
                    arch,
                    kernel: merge.kernel.clone(),
                });
                found += 1;
            }
        }
    }
    cells
}

/// Measures one gap cell: heuristic schedule and oracle certification
/// under their respective step budgets.
pub fn measure_gap_cell(arch: &Architecture, kernel: &Kernel, cfg: &GapConfig) -> GapRecord {
    let hb = StepBudget::new(cfg.heuristic_step_limit);
    let heuristic = schedule_kernel_budgeted(arch, kernel, SchedulerConfig::default(), &hb);
    let (heuristic_ii, mut detail) = match &heuristic {
        // Loop-less kernels report II 0, matching the oracle's sentinel.
        Ok(s) => (Some(s.ii().unwrap_or(0) as u64), String::new()),
        Err(e) => (None, format!("heuristic: {e}")),
    };

    let xb = StepBudget::new(cfg.exact_step_limit);
    match certify_min_ii(arch, kernel, &cfg.exact, &xb) {
        Err(e) => GapRecord {
            kernel: kernel.name().to_string(),
            arch: arch.name().to_string(),
            status: "error".to_string(),
            heuristic_ii,
            exact_ii: None,
            mii: 0,
            nodes: 0,
            detail: format!("oracle: {e}"),
        },
        Ok(report) => {
            let exact_ii = report.verdict.certified_ii().map(u64::from);
            let status = match (exact_ii, heuristic_ii) {
                // A validated heuristic schedule below the "certified
                // minimum" refutes the certificate: soundness bug.
                (Some(x), Some(h)) if x > h => {
                    detail =
                        format!("oracle certified II={x} above the validated heuristic II={h}");
                    "disagreement".to_string()
                }
                _ => report.verdict.name().to_string(),
            };
            GapRecord {
                kernel: kernel.name().to_string(),
                arch: arch.name().to_string(),
                status,
                heuristic_ii,
                exact_ii,
                mii: report.mii as u64,
                nodes: report.nodes(),
                detail,
            }
        }
    }
}

/// Runs a gap campaign over [`gap_cells`], journalling each finished
/// cell to `journal` (when given) and resuming completed cells from it
/// (when `resume`).
///
/// # Errors
///
/// [`CampaignError`] for journal I/O or corruption; individual cell
/// failures are recorded, never fatal.
pub fn run_gap(
    cfg: &GapConfig,
    journal: Option<&Path>,
    resume: bool,
) -> Result<GapReport, CampaignError> {
    run_gap_over(&gap_cells(cfg), cfg, journal, resume)
}

/// [`run_gap`] over an explicit cell list (the `oracle --cell` path).
///
/// # Errors
///
/// As [`run_gap`].
pub fn run_gap_over(
    cells: &[GapCell],
    cfg: &GapConfig,
    journal: Option<&Path>,
    resume: bool,
) -> Result<GapReport, CampaignError> {
    let fingerprint = gap_fingerprint(cfg);
    let done: HashMap<u64, GapRecord> = match (journal, resume) {
        (Some(path), true) if path.exists() => load_gap_journal(path)?,
        _ => HashMap::new(),
    };
    let mut journal = match journal {
        Some(path) => Some(Journal::open(path)?),
        None => None,
    };
    let mut records = Vec::with_capacity(cells.len());
    let mut resumed = 0usize;
    for cell in cells {
        let key = cell_key(cell.kernel.name(), cell.arch.name(), &fingerprint);
        if let Some(record) = done.get(&key) {
            records.push(record.clone());
            resumed += 1;
            continue;
        }
        let record = measure_gap_cell(&cell.arch, &cell.kernel, cfg);
        if let Some(j) = journal.as_mut() {
            j.append_line(&format!("{{\"key\":{key},{}}}", record.json_fields()))?;
        }
        records.push(record);
    }
    Ok(GapReport { records, resumed })
}

/// Loads a gap journal into a key → record map for `--resume`. Follows
/// the campaign journal's crash tolerance: a torn final line is ignored,
/// a malformed line anywhere else is [`CampaignError::Corrupt`].
///
/// # Errors
///
/// [`CampaignError::Io`] / [`CampaignError::Corrupt`].
pub fn load_gap_journal(path: &Path) -> Result<HashMap<u64, GapRecord>, CampaignError> {
    let contents = std::fs::read_to_string(path).map_err(|source| CampaignError::Io {
        path: path.to_path_buf(),
        operation: "read",
        source,
    })?;
    let lines: Vec<&str> = contents.lines().collect();
    let mut map = HashMap::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_gap_line(line) {
            Some((key, record)) => {
                map.insert(key, record);
            }
            None if idx + 1 == lines.len() => {} // torn tail: cell reruns
            None => {
                return Err(CampaignError::Corrupt {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    detail: "unparseable gap journal entry".to_string(),
                });
            }
        }
    }
    Ok(map)
}

fn parse_gap_line(line: &str) -> Option<(u64, GapRecord)> {
    if !line.starts_with("{\"key\":") || !line.ends_with('}') {
        return None;
    }
    let key = json_num_field(line, "key")?;
    Some((
        key,
        GapRecord {
            kernel: json_str_field(line, "kernel")?,
            arch: json_str_field(line, "arch")?,
            status: json_str_field(line, "status")?,
            heuristic_ii: json_num_field(line, "heuristic_ii"),
            exact_ii: json_num_field(line, "exact_ii"),
            mii: json_num_field(line, "mii")?,
            nodes: json_num_field(line, "nodes")?,
            detail: json_str_field(line, "detail")?,
        },
    ))
}

/// Renders a gap report as deterministic single-line-records JSON
/// (schema `gap-v1`): summary counts first, then every record in
/// campaign order. Byte-identical for identical records, however they
/// were obtained.
pub fn gap_json(report: &GapReport) -> String {
    use std::fmt::Write as _;
    let count = |status: &str| report.records.iter().filter(|r| r.status == status).count();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"gap-v1\",\"cells\":{},\"certified\":{},\"gap_unknown\":{},\
         \"infeasible\":{},\"disagreements\":{},\"errors\":{},\"nonzero_gaps\":{},\
         \"records\":[",
        report.records.len(),
        count("certified"),
        count("gap_unknown"),
        count("infeasible"),
        count("disagreement"),
        count("error"),
        report.nonzero_gaps().len(),
    );
    for (i, r) in report.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let gap = r.gap().map_or("null".to_string(), |g| g.to_string());
        let _ = write!(out, "{{{},\"gap\":{}}}", r.json_fields(), gap);
    }
    out.push_str("]}");
    out
}

/// Renders a gap report as a plain-text table.
pub fn gap_table(report: &GapReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:<22} {:>5} {:>6} {:>4} {:>4}  status",
        "kernel", "arch", "heur", "exact", "gap", "mii"
    );
    for r in &report.records {
        let opt = |v: Option<u64>| v.map_or("?".to_string(), |v| v.to_string());
        let gap = r.gap().map_or("?".to_string(), |g| g.to_string());
        let _ = writeln!(
            out,
            "{:<20} {:<22} {:>5} {:>6} {:>4} {:>4}  {}",
            r.kernel,
            r.arch,
            opt(r.heuristic_ii),
            opt(r.exact_ii),
            gap,
            r.mii,
            r.status
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> GapConfig {
        GapConfig {
            heuristic_step_limit: 100_000,
            exact_step_limit: 500_000,
            ..GapConfig::default()
        }
    }

    fn merge_cells() -> Vec<GapCell> {
        let merge = csched_kernels::by_name("Merge").unwrap();
        vec![
            GapCell {
                arch: imagine::central(),
                kernel: merge.kernel.clone(),
            },
            GapCell {
                arch: imagine::clustered(2),
                kernel: merge.kernel.clone(),
            },
        ]
    }

    #[test]
    fn merge_cells_certify_with_zero_gap() {
        let cfg = tiny_cfg();
        let report = run_gap_over(&merge_cells(), &cfg, None, false).unwrap();
        assert_eq!(report.records.len(), 2);
        for r in &report.records {
            assert_eq!(r.status, "certified", "{r:?}");
            assert_eq!(r.gap(), Some(0), "Merge heuristic hits the MII: {r:?}");
            assert!(r.nodes > 0);
        }
        assert!(report.disagreements().is_empty());
    }

    #[test]
    fn journal_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!("csched-gap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("gap.jsonl");
        let _ = std::fs::remove_file(&journal);

        let cfg = tiny_cfg();
        let cells = merge_cells();
        let fresh = run_gap_over(&cells, &cfg, Some(&journal), false).unwrap();
        assert_eq!(fresh.resumed, 0);
        let fresh_json = gap_json(&fresh);

        // Simulate a SIGKILL mid-append: clip the journal to a torn tail.
        let full = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(full.lines().count(), 2);
        let first_line_end = full.find('\n').unwrap();
        let torn = &full[..first_line_end + 1 + 10]; // second record torn
        std::fs::write(&journal, torn).unwrap();

        let resumed = run_gap_over(&cells, &cfg, Some(&journal), true).unwrap();
        assert_eq!(resumed.resumed, 1, "first cell resumes, torn cell reruns");
        assert_eq!(
            gap_json(&resumed),
            fresh_json,
            "resume must not change a byte of the report"
        );

        // A third, fully-resumed run is also identical.
        let replay = run_gap_over(&cells, &cfg, Some(&journal), true).unwrap();
        assert_eq!(replay.resumed, 2);
        assert_eq!(gap_json(&replay), fresh_json);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gap_json_counts_statuses() {
        let report = GapReport {
            records: vec![
                GapRecord {
                    kernel: "A".into(),
                    arch: "m1".into(),
                    status: "certified".into(),
                    heuristic_ii: Some(5),
                    exact_ii: Some(4),
                    mii: 4,
                    nodes: 10,
                    detail: String::new(),
                },
                GapRecord {
                    kernel: "B".into(),
                    arch: "m1".into(),
                    status: "gap_unknown".into(),
                    heuristic_ii: Some(7),
                    exact_ii: None,
                    mii: 3,
                    nodes: 99,
                    detail: String::new(),
                },
            ],
            resumed: 0,
        };
        let json = gap_json(&report);
        assert!(
            json.starts_with("{\"schema\":\"gap-v1\",\"cells\":2,"),
            "{json}"
        );
        assert!(json.contains("\"certified\":1"), "{json}");
        assert!(json.contains("\"gap_unknown\":1"), "{json}");
        assert!(json.contains("\"nonzero_gaps\":1"), "{json}");
        assert!(json.contains("\"gap\":1"), "{json}");
        assert!(json.contains("\"exact_ii\":null"), "{json}");
        assert_eq!(report.nonzero_gaps().len(), 1);
    }

    #[test]
    fn fingerprint_changes_with_the_search_space() {
        let a = gap_fingerprint(&GapConfig::default());
        let cfg = GapConfig {
            exact: ExactConfig {
                max_copies: 1,
                ..ExactConfig::default()
            },
            ..GapConfig::default()
        };
        assert_ne!(a, gap_fingerprint(&cfg));
    }

    #[test]
    fn explore_sample_extends_the_cell_list() {
        let cfg = GapConfig {
            explore_sample: 3,
            ..GapConfig::default()
        };
        let cells = gap_cells(&cfg);
        assert_eq!(cells.len(), 43, "40 paper cells + 3 sampled");
        let again = gap_cells(&cfg);
        assert_eq!(
            cells.iter().map(|c| c.arch.name()).collect::<Vec<_>>(),
            again.iter().map(|c| c.arch.name()).collect::<Vec<_>>(),
            "seeded sampling is reproducible"
        );
    }
}
