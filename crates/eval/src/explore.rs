//! Parallel design-space exploration: a multi-threaded architecture
//! search with Pareto reporting.
//!
//! The paper evaluates four hand-picked register-file organisations
//! (central, clustered ×2/×4, distributed). This module turns that grid
//! into a *search*: [`explore`] enumerates or samples candidate machines
//! from a [`DesignSpace`], schedules the full kernel suite on each one
//! under a hard placement-attempt budget, scores every candidate on four
//! minimised objectives — harmonic-mean loop II across the suite, plus
//! the register-file area, power, and access delay of the §6 VLSI cost
//! model — and extracts the Pareto frontier, optionally refining it by
//! mutating frontier designs one axis at a time for a few rounds.
//!
//! Three properties the tests pin down:
//!
//! 1. **Thread-count invariance.** Candidates are evaluated through the
//!    [`crate::pool`] worker pool and merged in candidate-index order;
//!    [`ExploreReport::to_json`] carries no thread count or wall clock,
//!    so `--jobs 8` produces *byte-identical* output to `--jobs 1`.
//! 2. **Per-candidate isolation.** Each candidate's suite shares one
//!    [`StepBudget`]; a candidate that fails or times out becomes a
//!    scored-out [`CandidateReport`], never an aborted sweep.
//! 3. **Crash-consistent resume.** Completed cells journal through
//!    [`crate::campaign::Journal`], keyed by the *content* fingerprint of
//!    the candidate architecture ([`Architecture::fingerprint`]), so an
//!    interrupted sweep resumes without re-scheduling finished
//!    candidates and renders the same bytes as the uninterrupted run.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use csched_core::{
    regalloc, schedule_kernel_budgeted, validate, SchedError, SchedulerConfig, StepBudget,
};
use csched_ir::Kernel;
use csched_machine::cost::{self, CostParams};
use csched_machine::gen::{DesignPoint, DesignSpace, Rng};
use csched_machine::{imagine, Architecture};

use crate::campaign::{
    cell_key, config_fingerprint, CampaignError, CellRecord, CellStatus, Journal,
};

/// Everything that decides an exploration's outcome (and therefore its
/// journal keys): the space, the sampling budget and seed, the
/// refinement depth, the per-candidate step budget, and the scheduler
/// configuration.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// The space candidates are drawn from.
    pub space: DesignSpace,
    /// Sampling budget: when the space holds at most this many points it
    /// is enumerated exhaustively (deduplicated by fingerprint);
    /// otherwise this many distinct samples are drawn from `seed`.
    pub candidates: usize,
    /// Seed for the sampling stream (ignored when enumerating).
    pub seed: u64,
    /// Rounds of frontier refinement: each round mutates every frontier
    /// design one axis at a time and evaluates the unseen neighbours.
    pub refine_rounds: usize,
    /// Placement-attempt budget shared by one candidate's whole suite.
    pub step_limit: u64,
    /// Whether to seed the sweep with the paper's four Imagine machines
    /// as named anchor candidates.
    pub anchors: bool,
    /// Scheduler configuration used for every cell.
    pub sched: SchedulerConfig,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            space: DesignSpace::default(),
            candidates: 24,
            seed: 0xC5C4ED,
            refine_rounds: 1,
            step_limit: 1_000_000,
            anchors: true,
            sched: SchedulerConfig::default(),
        }
    }
}

/// Where a candidate came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Origin {
    /// One of the paper's four Imagine machines.
    Anchor,
    /// Exhaustive enumeration of a small space.
    Enumerated,
    /// Seeded sampling of a large space.
    Sampled,
    /// Mutated off the frontier in the given refinement round (1-based).
    Mutated(usize),
}

impl Origin {
    /// Stable lower-snake name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Origin::Anchor => "anchor",
            Origin::Enumerated => "enumerated",
            Origin::Sampled => "sampled",
            Origin::Mutated(_) => "mutated",
        }
    }
}

/// A candidate's position on the four minimised objectives. Present only
/// when every kernel in the suite scheduled and validated (`Ok` cells).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Score {
    /// Harmonic mean of the loop IIs across the kernel suite (cycles;
    /// lower is faster).
    pub hmean_ii: f64,
    /// Register-file area from [`cost::estimate`].
    pub area: f64,
    /// Register-file peak power.
    pub power: f64,
    /// Register-file access delay.
    pub delay: f64,
}

impl Score {
    fn objectives(&self) -> [f64; 4] {
        [self.hmean_ii, self.area, self.power, self.delay]
    }

    /// Pareto dominance: at least as good on every objective and
    /// strictly better on at least one (all objectives minimised).
    pub fn dominates(&self, other: &Score) -> bool {
        let a = self.objectives();
        let b = other.objectives();
        a.iter().zip(&b).all(|(x, y)| x <= y) && a.iter().zip(&b).any(|(x, y)| x < y)
    }

    fn is_finite(&self) -> bool {
        self.objectives().iter().all(|v| v.is_finite())
    }
}

/// One evaluated candidate machine.
#[derive(Clone, Debug)]
pub struct CandidateReport {
    /// Architecture name (`dse-<label>` for generated designs, the
    /// Imagine name for anchors).
    pub name: String,
    /// Content fingerprint of the architecture
    /// ([`Architecture::fingerprint`]); the journal key component.
    pub fingerprint: u64,
    /// Where the candidate came from.
    pub origin: Origin,
    /// The design point, when the candidate was generated from the space
    /// (anchors have none).
    pub point: Option<DesignPoint>,
    /// One record per kernel, in suite order; the whole suite shared one
    /// [`StepBudget`].
    pub kernels: Vec<CellRecord>,
    /// The objective vector; `None` unless every cell ended `Ok` (with
    /// finite costs).
    pub score: Option<Score>,
    /// How many other scored candidates Pareto-dominate this one
    /// (0 = on the frontier).
    pub dominated_by: usize,
}

impl CandidateReport {
    /// Whether every kernel cell ended `Ok`.
    pub fn all_ok(&self) -> bool {
        !self.kernels.is_empty() && self.kernels.iter().all(|r| r.status == CellStatus::Ok)
    }

    /// Whether the candidate sits on the Pareto frontier.
    pub fn on_frontier(&self) -> bool {
        self.score.is_some() && self.dominated_by == 0
    }
}

/// Result of [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Size of the configured design space.
    pub space_size: usize,
    /// Every evaluated candidate: anchors first, then the initial draw,
    /// then refinement rounds — each batch in generation order.
    pub candidates: Vec<CandidateReport>,
    /// Indices into `candidates` of the Pareto-frontier members, in
    /// candidate order.
    pub frontier: Vec<usize>,
    /// Candidates satisfied wholly from the resume map (every kernel
    /// cell journaled) instead of being re-scheduled. Deliberately *not*
    /// part of [`Self::to_json`], so a resumed sweep renders the same
    /// bytes as an uninterrupted one.
    pub resumed: usize,
}

impl ExploreReport {
    /// Renders the full report as one deterministic JSON document: a
    /// pure function of the candidate records and scores — no thread
    /// count, wall clock, or resume statistics — so output is
    /// byte-identical across `jobs` and across resumes.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512 + self.candidates.len() * 512);
        let _ = write!(s, "{{\"explore\":{{\"space_size\":{},", self.space_size);
        s.push_str("\"candidates\":[");
        for (i, c) in self.candidates.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"fingerprint\":\"{:016x}\",\"origin\":\"{}\",\"ok\":{},",
                csched_core::trace::json_escape(&c.name),
                c.fingerprint,
                c.origin.name(),
                c.all_ok(),
            );
            match &c.score {
                Some(sc) => {
                    let _ = write!(
                        s,
                        "\"hmean_ii\":{:.4},\"area\":{:.4},\"power\":{:.4},\"delay\":{:.4},",
                        sc.hmean_ii, sc.area, sc.power, sc.delay
                    );
                }
                None => {
                    s.push_str("\"hmean_ii\":null,\"area\":null,\"power\":null,\"delay\":null,")
                }
            }
            let _ = write!(
                s,
                "\"dominated_by\":{},\"frontier\":{},\"kernels\":[",
                c.dominated_by,
                c.on_frontier()
            );
            for (j, r) in c.kernels.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push('{');
                s.push_str(&r.json_fields());
                s.push('}');
            }
            s.push_str("]}");
        }
        s.push_str("\n],\"frontier\":[");
        for (i, &idx) in self.frontier.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\"",
                csched_core::trace::json_escape(&self.candidates[idx].name)
            );
        }
        let scored = self.candidates.iter().filter(|c| c.score.is_some()).count();
        let _ = write!(
            s,
            "],\"summary\":{{\"evaluated\":{},\"scored\":{},\"frontier\":{}}}}}}}",
            self.candidates.len(),
            scored,
            self.frontier.len()
        );
        s.push('\n');
        s
    }

    /// Renders the Pareto frontier as a plain-text table. When the
    /// central-register-file anchor is among the candidates its
    /// objectives are used as the normalisation baseline (ratios, the
    /// way the paper reports Figures 25–27); otherwise values are
    /// absolute.
    pub fn render_frontier(&self) -> String {
        let baseline = self
            .candidates
            .iter()
            .find(|c| c.name == "imagine-central")
            .and_then(|c| c.score);
        let mut out = String::new();
        let scored = self.candidates.iter().filter(|c| c.score.is_some()).count();
        let _ = writeln!(
            out,
            "Pareto frontier: {} of {} scored candidates ({} evaluated, space of {})",
            self.frontier.len(),
            scored,
            self.candidates.len(),
            self.space_size
        );
        match baseline {
            Some(_) => {
                let _ = writeln!(
                    out,
                    "(hmean II in cycles; area/power/delay normalised to imagine-central)"
                );
            }
            None => {
                let _ = writeln!(out, "(hmean II in cycles; area/power/delay absolute)");
            }
        }
        let _ = writeln!(
            out,
            "{:<26} {:>9} {:>9} {:>9} {:>9}  origin",
            "candidate", "hmean II", "area", "power", "delay"
        );
        for &idx in &self.frontier {
            let c = &self.candidates[idx];
            let Some(sc) = c.score else { continue };
            let (area, power, delay) = match baseline {
                Some(b) => (sc.area / b.area, sc.power / b.power, sc.delay / b.delay),
                None => (sc.area, sc.power, sc.delay),
            };
            let _ = writeln!(
                out,
                "{:<26} {:>9.2} {:>9.3} {:>9.3} {:>9.3}  {}",
                c.name,
                sc.hmean_ii,
                area,
                power,
                delay,
                c.origin.name()
            );
        }
        out
    }
}

/// Computes each scored candidate's `dominated_by` count and returns the
/// frontier (indices of scored candidates dominated by none), in order.
pub fn pareto(candidates: &mut [CandidateReport]) -> Vec<usize> {
    let scores: Vec<Option<Score>> = candidates
        .iter()
        .map(|c| c.score.filter(Score::is_finite))
        .collect();
    let mut frontier = Vec::new();
    for i in 0..candidates.len() {
        let Some(mine) = scores[i] else {
            candidates[i].dominated_by = 0;
            continue;
        };
        let dominated_by = scores
            .iter()
            .enumerate()
            .filter(|&(j, other)| j != i && other.is_some_and(|o| o.dominates(&mine)))
            .count();
        candidates[i].dominated_by = dominated_by;
        if dominated_by == 0 {
            frontier.push(i);
        }
    }
    frontier
}

/// A candidate awaiting evaluation.
struct Pending {
    arch: Architecture,
    origin: Origin,
    point: Option<DesignPoint>,
}

/// Schedules the whole suite on one candidate under a single shared
/// [`StepBudget`], so an expensive candidate costs at most `step_limit`
/// attempts in total, not per kernel.
fn run_candidate(
    kernels: &[(&str, &Kernel)],
    arch: &Architecture,
    sched: &SchedulerConfig,
    step_limit: u64,
) -> Vec<CellRecord> {
    let budget = StepBudget::new(step_limit);
    let mut records = Vec::with_capacity(kernels.len());
    for &(name, kernel) in kernels {
        let before = budget.spent();
        let mut record = CellRecord {
            kernel: name.to_string(),
            arch: arch.name().to_string(),
            status: CellStatus::Failed,
            ii: 0,
            copies: 0,
            max_registers: 0,
            attempts: 0,
            detail: String::new(),
        };
        match schedule_kernel_budgeted(arch, kernel, sched.clone(), &budget) {
            Ok(schedule) => match validate::validate(arch, kernel, &schedule) {
                Ok(()) => {
                    record.status = CellStatus::Ok;
                    record.ii = schedule.ii().unwrap_or(1);
                    record.copies = schedule.num_copies();
                    record.max_registers =
                        regalloc::analyze(arch, kernel, &schedule).max_required();
                }
                Err(violations) => {
                    record.detail = format!(
                        "invalid schedule: {}",
                        violations
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join("; ")
                    );
                }
            },
            Err(SchedError::DeadlineExceeded { .. } | SchedError::Cancelled { .. }) => {
                record.status = CellStatus::TimedOut;
                record.detail = format!("candidate step limit {step_limit} exhausted");
            }
            Err(e) => {
                record.detail = e.to_string();
            }
        }
        record.attempts = budget.spent().saturating_sub(before);
        records.push(record);
    }
    records
}

fn score_candidate(arch: &Architecture, records: &[CellRecord]) -> Option<Score> {
    if records.is_empty() || records.iter().any(|r| r.status != CellStatus::Ok) {
        return None;
    }
    let mut inv_sum = 0.0f64;
    for r in records {
        inv_sum += 1.0 / f64::from(r.ii.max(1));
    }
    let hmean_ii = records.len() as f64 / inv_sum;
    let report = cost::estimate(arch, &CostParams::default());
    let score = Score {
        hmean_ii,
        area: report.area(),
        power: report.power(),
        delay: report.delay,
    };
    score.is_finite().then_some(score)
}

/// Evaluates one batch of candidates on up to `jobs` threads, reusing
/// fully journaled candidates from `resume` and journaling fresh cells
/// in completion order. Results come back in batch order.
#[allow(clippy::too_many_arguments)]
fn eval_batch(
    batch: Vec<Pending>,
    kernels: &[(&str, &Kernel)],
    sched: &SchedulerConfig,
    sched_fp: &str,
    step_limit: u64,
    jobs: usize,
    journal: &mut Option<&mut Journal>,
    resume: &HashMap<u64, CellRecord>,
    resumed: &mut usize,
) -> Result<Vec<CandidateReport>, CampaignError> {
    let keyed: Vec<(Pending, u64, Vec<u64>)> = batch
        .into_iter()
        .map(|p| {
            let fp = p.arch.fingerprint();
            let arch_id = format!("{fp:016x}");
            let keys = kernels
                .iter()
                .map(|&(name, _)| cell_key(name, &arch_id, sched_fp))
                .collect();
            (p, fp, keys)
        })
        .collect();
    let results = crate::pool::run_indexed(
        &keyed,
        jobs,
        |_, (p, fp, keys)| {
            // Resume is all-or-nothing per candidate: the suite shares
            // one budget, so a partially journaled candidate is
            // recomputed whole to keep attempts (and therefore the
            // report) identical to an uninterrupted run.
            let journaled: Option<Vec<CellRecord>> =
                keys.iter().map(|k| resume.get(k).cloned()).collect();
            let (fresh, records) = match journaled {
                Some(records) => (false, records),
                None => (true, run_candidate(kernels, &p.arch, sched, step_limit)),
            };
            let score = score_candidate(&p.arch, &records);
            (
                fresh,
                CandidateReport {
                    name: p.arch.name().to_string(),
                    fingerprint: *fp,
                    origin: p.origin,
                    point: p.point,
                    kernels: records,
                    score,
                    dominated_by: 0,
                },
            )
        },
        |i, (fresh, report)| {
            if *fresh {
                if let Some(j) = journal.as_deref_mut() {
                    for (key, record) in keyed[i].2.iter().zip(&report.kernels) {
                        j.append(*key, record)?;
                    }
                }
            } else {
                *resumed += 1;
            }
            Ok(())
        },
    )?;
    Ok(results.into_iter().map(|(_, report)| report).collect())
}

/// Runs the exploration: seeds (anchors + enumeration or sampling),
/// evaluates everything on up to `jobs` threads, refines the frontier
/// for `config.refine_rounds` rounds of single-axis mutation, and
/// returns the scored, frontier-annotated report.
///
/// The report is a pure function of `config` and `kernels` — not of
/// `jobs`, the journal, or the resume map — so two invocations that
/// differ only in those produce byte-identical [`ExploreReport::to_json`]
/// output.
///
/// # Errors
///
/// Only journal I/O fails the sweep ([`CampaignError`]); scheduling
/// failures are per-candidate records.
pub fn explore(
    config: &ExploreConfig,
    kernels: &[(&str, &Kernel)],
    jobs: usize,
    mut journal: Option<&mut Journal>,
    resume: &HashMap<u64, CellRecord>,
) -> Result<ExploreReport, CampaignError> {
    let sched_fp = format!(
        "explore;{}",
        config_fingerprint(&config.sched, config.step_limit)
    );
    let mut seen: HashSet<u64> = HashSet::new();
    let mut batch: Vec<Pending> = Vec::new();
    let push = |seen: &mut HashSet<u64>, batch: &mut Vec<Pending>, p: Pending| {
        if seen.insert(p.arch.fingerprint()) {
            batch.push(p);
        }
    };

    if config.anchors {
        for arch in imagine::all_variants() {
            push(
                &mut seen,
                &mut batch,
                Pending {
                    arch,
                    origin: Origin::Anchor,
                    point: None,
                },
            );
        }
    }

    let space_size = config.space.size();
    if space_size <= config.candidates {
        for point in config.space.enumerate() {
            if let Ok(arch) = point.build() {
                push(
                    &mut seen,
                    &mut batch,
                    Pending {
                        arch,
                        origin: Origin::Enumerated,
                        point: Some(point),
                    },
                );
            }
        }
    } else {
        let mut rng = Rng::new(config.seed);
        let mut drawn = 0usize;
        // Bounded draws: duplicates don't count, but a pathological
        // space can't loop forever either.
        for _ in 0..config.candidates.saturating_mul(32) {
            if drawn >= config.candidates {
                break;
            }
            let Some(point) = config.space.sample(&mut rng) else {
                break;
            };
            if let Ok(arch) = point.build() {
                if seen.insert(arch.fingerprint()) {
                    batch.push(Pending {
                        arch,
                        origin: Origin::Sampled,
                        point: Some(point),
                    });
                    drawn += 1;
                }
            }
        }
    }

    let mut resumed = 0usize;
    let mut candidates = eval_batch(
        batch,
        kernels,
        &config.sched,
        &sched_fp,
        config.step_limit,
        jobs,
        &mut journal,
        resume,
        &mut resumed,
    )?;

    for round in 1..=config.refine_rounds {
        let frontier = pareto(&mut candidates);
        let mut next: Vec<Pending> = Vec::new();
        for &idx in &frontier {
            let Some(point) = candidates[idx].point else {
                continue;
            };
            for neighbour in point.neighbours(&config.space) {
                if let Ok(arch) = neighbour.build() {
                    if seen.insert(arch.fingerprint()) {
                        next.push(Pending {
                            arch,
                            origin: Origin::Mutated(round),
                            point: Some(neighbour),
                        });
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        candidates.extend(eval_batch(
            next,
            kernels,
            &config.sched,
            &sched_fp,
            config.step_limit,
            jobs,
            &mut journal,
            resume,
            &mut resumed,
        )?);
    }

    let frontier = pareto(&mut candidates);
    Ok(ExploreReport {
        space_size,
        candidates,
        frontier,
        resumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> Vec<csched_kernels::Workload> {
        ["Merge", "Sort"]
            .iter()
            .filter_map(|n| csched_kernels::by_name(n))
            .collect()
    }

    fn tiny_space() -> DesignSpace {
        DesignSpace {
            clusters: (0, 1),
            alus: (2, 3),
            buses: (2, 2),
            rf_capacities: vec![16],
            write_ports: (1, 1),
        }
    }

    fn run(config: &ExploreConfig, jobs: usize) -> ExploreReport {
        let workloads = suite();
        let kernels: Vec<(&str, &Kernel)> = workloads
            .iter()
            .map(|w| (w.kernel.name(), &w.kernel))
            .collect();
        explore(config, &kernels, jobs, None, &HashMap::new()).unwrap()
    }

    #[test]
    fn tiny_space_is_enumerated_with_anchors_and_scored() {
        let config = ExploreConfig {
            space: tiny_space(),
            candidates: 16,
            refine_rounds: 0,
            step_limit: 500_000,
            ..ExploreConfig::default()
        };
        let report = run(&config, 2);
        assert_eq!(report.space_size, 4);
        // 4 anchors + 4 enumerated points.
        assert_eq!(report.candidates.len(), 8);
        assert!(report
            .candidates
            .iter()
            .take(4)
            .all(|c| c.origin == Origin::Anchor));
        assert!(!report.frontier.is_empty());
        // Every frontier member is genuinely non-dominated.
        for &i in &report.frontier {
            let mine = report.candidates[i].score.unwrap();
            for c in &report.candidates {
                if let Some(other) = c.score {
                    assert!(!other.dominates(&mine));
                }
            }
        }
        // The text and JSON renderers cover the frontier.
        let json = report.to_json();
        assert!(json.contains("\"frontier\":true"));
        assert!(report.render_frontier().contains("imagine-central"));
    }

    #[test]
    fn dominance_is_strict_and_partial() {
        let a = Score {
            hmean_ii: 2.0,
            area: 1.0,
            power: 1.0,
            delay: 1.0,
        };
        let b = Score {
            hmean_ii: 3.0,
            area: 2.0,
            power: 2.0,
            delay: 2.0,
        };
        let c = Score {
            hmean_ii: 1.0,
            area: 5.0,
            power: 1.0,
            delay: 1.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "dominance must be irreflexive");
        assert!(!a.dominates(&c) && !c.dominates(&a), "trade-offs coexist");
    }

    #[test]
    fn sampling_respects_the_candidate_budget_and_dedups() {
        let config = ExploreConfig {
            candidates: 6,
            anchors: false,
            refine_rounds: 0,
            step_limit: 50_000,
            ..ExploreConfig::default()
        };
        let report = run(&config, 2);
        assert_eq!(report.candidates.len(), 6);
        let fps: HashSet<u64> = report.candidates.iter().map(|c| c.fingerprint).collect();
        assert_eq!(fps.len(), 6, "sampled candidates must be distinct");
        assert!(report
            .candidates
            .iter()
            .all(|c| c.origin == Origin::Sampled));
    }

    #[test]
    fn refinement_adds_only_unseen_neighbours() {
        let config = ExploreConfig {
            space: DesignSpace {
                clusters: (0, 2),
                alus: (1, 3),
                buses: (1, 2),
                rf_capacities: vec![8, 16],
                write_ports: (1, 1),
            },
            candidates: 4,
            anchors: false,
            refine_rounds: 2,
            step_limit: 50_000,
            ..ExploreConfig::default()
        };
        let report = run(&config, 2);
        let fps: Vec<u64> = report.candidates.iter().map(|c| c.fingerprint).collect();
        let unique: HashSet<u64> = fps.iter().copied().collect();
        assert_eq!(unique.len(), fps.len(), "refinement must never re-evaluate");
        assert!(report
            .candidates
            .iter()
            .any(|c| matches!(c.origin, Origin::Mutated(_))));
    }

    #[test]
    fn a_candidate_that_times_out_is_isolated_not_fatal() {
        let config = ExploreConfig {
            space: tiny_space(),
            candidates: 16,
            anchors: false,
            refine_rounds: 0,
            step_limit: 3, // starvation: every candidate times out
            ..ExploreConfig::default()
        };
        let report = run(&config, 2);
        assert_eq!(report.candidates.len(), 4);
        assert!(report.candidates.iter().all(|c| c.score.is_none()));
        assert!(report.frontier.is_empty());
        assert!(report
            .candidates
            .iter()
            .flat_map(|c| &c.kernels)
            .any(|r| r.status == CellStatus::TimedOut));
        // The renderers still work with nothing scored.
        assert!(report.to_json().contains("\"hmean_ii\":null"));
        assert!(report.render_frontier().contains("0 of 0"));
    }
}
