//! The register-file cost comparisons of Figures 25–27, the §1/§8
//! headline ratios, and the §8 scaling projection.

use csched_machine::{cost, imagine, Architecture};

/// One row of the Figures 25–27 bar data: normalised area/power/delay.
#[derive(Clone, Debug, PartialEq)]
pub struct CostRow {
    /// Architecture name.
    pub arch: String,
    /// Area relative to the central organisation.
    pub area: f64,
    /// Peak power relative to the central organisation.
    pub power: f64,
    /// Access delay relative to the central organisation.
    pub delay: f64,
}

/// Computes the normalised cost rows for a set of architectures, using the
/// first as the baseline (the paper normalises to central).
///
/// # Errors
///
/// Returns [`cost::CostError::EmptyArchList`] for an empty `archs` (there
/// is no baseline row to index) and propagates
/// [`cost::CostError::ZeroBaseline`] when the baseline's area, power, or
/// delay is zero or non-finite — instead of panicking or emitting
/// `inf`/`NaN` ratios.
pub fn cost_rows(
    archs: &[Architecture],
    params: &cost::CostParams,
) -> Result<Vec<CostRow>, cost::CostError> {
    let reports: Vec<cost::CostReport> = archs.iter().map(|a| cost::estimate(a, params)).collect();
    let base = reports.first().ok_or(cost::CostError::EmptyArchList)?;
    reports
        .iter()
        .map(|r| {
            let (area, power, delay) = cost::normalized(r, base)?;
            Ok(CostRow {
                arch: r.arch.clone(),
                area,
                power,
                delay,
            })
        })
        .collect()
}

/// The Figures 25–27 rows for the paper's four organisations.
///
/// # Errors
///
/// Propagates [`cost::CostError`] from [`cost_rows`] (cannot occur for
/// the paper's machines, whose costs are strictly positive).
pub fn figures_25_27() -> Result<Vec<CostRow>, cost::CostError> {
    cost_rows(&imagine::all_variants(), &cost::CostParams::default())
}

/// The headline comparisons of §1/§8.
#[derive(Clone, Debug)]
pub struct Headline {
    /// Distributed ÷ central: paper reports 9 % area, 6 % power, 37 % delay.
    pub dist_vs_central: (f64, f64, f64),
    /// Distributed ÷ clustered(4): paper reports 56 % area, 50 % power.
    pub dist_vs_clustered: (f64, f64, f64),
}

/// Computes the headline ratios at the paper's 16-unit configuration.
///
/// # Errors
///
/// Propagates [`cost::CostError`] from [`cost::normalized`].
pub fn headline() -> Result<Headline, cost::CostError> {
    let p = cost::CostParams::default();
    let central = cost::estimate(&imagine::central(), &p);
    let clustered = cost::estimate(&imagine::clustered(4), &p);
    let dist = cost::estimate(&imagine::distributed(), &p);
    Ok(Headline {
        dist_vs_central: cost::normalized(&dist, &central)?,
        dist_vs_clustered: cost::normalized(&dist, &clustered)?,
    })
}

/// One point of the §8 scaling projection.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Scale factor (1 = 12 arithmetic units, 4 = 48).
    pub scale: usize,
    /// Arithmetic units at this scale.
    pub arithmetic_units: usize,
    /// Distributed ÷ clustered(4) area ratio (paper projects 12 % at 48
    /// units).
    pub area_ratio: f64,
    /// Distributed ÷ clustered(4) power ratio (paper projects 9 %).
    pub power_ratio: f64,
    /// Distributed ÷ central area ratio.
    pub area_vs_central: f64,
}

/// Computes the scaling sweep for the §8 projection.
pub fn scaling(scales: &[usize]) -> Vec<ScalePoint> {
    let p = cost::CostParams::default();
    scales
        .iter()
        .map(|&s| {
            let central = cost::estimate(&imagine::central_scaled(s), &p);
            let clustered = cost::estimate(&imagine::clustered_scaled(4, s), &p);
            let dist = cost::estimate(&imagine::distributed_scaled(s), &p);
            ScalePoint {
                scale: s,
                arithmetic_units: 12 * s,
                area_ratio: dist.area() / clustered.area(),
                power_ratio: dist.power() / clustered.power(),
                area_vs_central: dist.area() / central.area(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_arch_list_is_a_typed_error() {
        assert_eq!(
            cost_rows(&[], &cost::CostParams::default()),
            Err(cost::CostError::EmptyArchList)
        );
    }

    #[test]
    fn figures_monotone_in_file_count() {
        let rows = figures_25_27().unwrap();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].area - 1.0).abs() < 1e-12, "baseline normalised");
        // central > clustered(2) > clustered(4) > distributed in area/power.
        assert!(rows[1].area < rows[0].area);
        assert!(rows[2].area < rows[1].area);
        assert!(rows[3].area < rows[2].area);
        assert!(rows[3].power < rows[2].power);
        assert!(rows[3].delay < rows[0].delay);
    }

    #[test]
    fn headline_in_paper_bands() {
        let h = headline().unwrap();
        let (a, p, d) = h.dist_vs_central;
        assert!((0.04..=0.16).contains(&a), "area {a:.3} (paper 0.09)");
        assert!((0.02..=0.12).contains(&p), "power {p:.3} (paper 0.06)");
        assert!((0.2..=0.55).contains(&d), "delay {d:.3} (paper 0.37)");
        let (a2, p2, _) = h.dist_vs_clustered;
        assert!((0.3..=0.8).contains(&a2), "area {a2:.3} (paper 0.56)");
        assert!((0.25..=0.75).contains(&p2), "power {p2:.3} (paper 0.50)");
    }

    #[test]
    fn scaling_gap_widens() {
        // §8: at 48 units the distributed advantage over clustered roughly
        // quadruples (56% -> 12% area, 50% -> 9% power).
        let pts = scaling(&[1, 4]);
        assert!(pts[1].area_ratio < pts[0].area_ratio);
        assert!(pts[1].power_ratio < pts[0].power_ratio);
        assert!(
            pts[1].area_ratio < 0.45 * pts[0].area_ratio / 0.56 + 0.2,
            "48-unit area ratio should shrink strongly: {:.3} vs {:.3}",
            pts[1].area_ratio,
            pts[0].area_ratio
        );
    }
}
