//! A deterministic scoped worker pool for embarrassingly parallel sweeps.
//!
//! [`run_indexed`] evaluates one closure over a slice of items on up to
//! `jobs` OS threads ([`std::thread::scope`]; no external dependencies).
//! Work distribution is dynamic: idle workers claim the next unclaimed
//! item index from a shared atomic counter, so a slow item never leaves
//! the rest of the pool idle behind it. Two properties make the pool safe
//! to put under byte-for-byte-reproducible reports:
//!
//! 1. **Index-ordered results.** Whatever interleaving the threads
//!    produce, the returned `Vec` is in item order — the output is a pure
//!    function of the items, independent of `jobs`.
//! 2. **Serialised collection.** The `collect` callback runs only on the
//!    calling thread, one result at a time, in *completion* order — the
//!    right hook for crash-consistent journaling, where every finished
//!    item must hit the disk before the sweep moves on, but a torn run
//!    may hold an arbitrary subset.
//!
//! With `jobs <= 1` the pool degrades to a plain sequential loop with
//! identical semantics (collection order then equals item order).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `work` over `items` on up to `jobs` threads, feeding each result
/// through `collect` (on the calling thread, in completion order) and
/// returning all results in item order.
///
/// `work` must be deterministic per item for the output to be independent
/// of `jobs`; the pool guarantees the rest. A `work` panic propagates
/// (the scope joins all threads first).
///
/// # Errors
///
/// Stops early and returns the first error from `collect`; workers finish
/// their in-flight items and no further results are collected.
pub fn run_indexed<T, R, E, W, C>(
    items: &[T],
    jobs: usize,
    work: W,
    mut collect: C,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    W: Fn(usize, &T) -> R + Sync,
    C: FnMut(usize, &R) -> Result<(), E>,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let r = work(i, item);
            collect(i, &r)?;
            out.push(r);
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut first_err: Option<E> = None;

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let work = &work;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // A send error means the collector bailed early; stop
                // claiming work.
                if tx.send((i, work(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        // Drop the original sender so `rx` disconnects once the workers
        // finish.
        drop(tx);
        for (i, r) in rx {
            if let Err(e) = collect(i, &r) {
                first_err = Some(e);
                break; // drops rx at scope end; workers see the hangup
            }
            slots[i] = Some(r);
        }
    });

    match first_err {
        Some(e) => Err(e),
        None => Ok(slots.into_iter().flatten().collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered_for_any_job_count() {
        let items: Vec<usize> = (0..100).collect();
        let golden: Vec<usize> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got: Vec<usize> =
                run_indexed(&items, jobs, |_, &x| x * x, |_, _| Ok::<(), ()>(())).unwrap();
            assert_eq!(got, golden, "jobs={jobs}");
        }
    }

    #[test]
    fn collect_sees_every_result_exactly_once_on_the_caller_thread() {
        let items: Vec<usize> = (0..50).collect();
        let caller = std::thread::current().id();
        let mut seen = vec![0usize; items.len()];
        run_indexed(
            &items,
            4,
            |i, _| i,
            |i, &r| {
                assert_eq!(std::thread::current().id(), caller);
                assert_eq!(i, r);
                seen[i] += 1;
                Ok::<(), ()>(())
            },
        )
        .unwrap();
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn collect_error_stops_the_sweep() {
        let items: Vec<usize> = (0..1000).collect();
        let err = run_indexed(&items, 4, |i, _| i, |_, _| Err("journal full")).unwrap_err();
        assert_eq!(err, "journal full");
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        let none: Vec<u8> = vec![];
        let got: Vec<u8> = run_indexed(&none, 8, |_, &x| x, |_, _| Ok::<(), ()>(())).unwrap();
        assert!(got.is_empty());
        let one = [7u8];
        let got: Vec<u8> = run_indexed(&one, 8, |_, &x| x + 1, |_, _| Ok::<(), ()>(())).unwrap();
        assert_eq!(got, vec![8]);
    }
}
