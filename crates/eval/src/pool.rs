//! A deterministic scoped worker pool for embarrassingly parallel sweeps.
//!
//! [`run_indexed`] evaluates one closure over a slice of items on up to
//! `jobs` OS threads ([`std::thread::scope`]; no external dependencies).
//! Work distribution is dynamic: idle workers claim the next unclaimed
//! item index from a shared atomic counter, so a slow item never leaves
//! the rest of the pool idle behind it. Two properties make the pool safe
//! to put under byte-for-byte-reproducible reports:
//!
//! 1. **Index-ordered results.** Whatever interleaving the threads
//!    produce, the returned `Vec` is in item order — the output is a pure
//!    function of the items, independent of `jobs`.
//! 2. **Serialised collection.** The `collect` callback runs only on the
//!    calling thread, one result at a time, in *completion* order — the
//!    right hook for crash-consistent journaling, where every finished
//!    item must hit the disk before the sweep moves on, but a torn run
//!    may hold an arbitrary subset.
//!
//! With `jobs <= 1` the pool degrades to a plain sequential loop with
//! identical semantics (collection order then equals item order).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Maps `work` over `items` on up to `jobs` threads, feeding each result
/// through `collect` (on the calling thread, in completion order) and
/// returning all results in item order.
///
/// `work` must be deterministic per item for the output to be independent
/// of `jobs`; the pool guarantees the rest. A `work` panic propagates
/// (the scope joins all threads first).
///
/// # Errors
///
/// Stops early and returns the first error from `collect`; workers finish
/// their in-flight items and no further results are collected.
pub fn run_indexed<T, R, E, W, C>(
    items: &[T],
    jobs: usize,
    work: W,
    mut collect: C,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    W: Fn(usize, &T) -> R + Sync,
    C: FnMut(usize, &R) -> Result<(), E>,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let r = work(i, item);
            collect(i, &r)?;
            out.push(r);
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut first_err: Option<E> = None;

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let work = &work;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // A send error means the collector bailed early; stop
                // claiming work.
                if tx.send((i, work(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        // Drop the original sender so `rx` disconnects once the workers
        // finish.
        drop(tx);
        for (i, r) in rx {
            if let Err(e) = collect(i, &r) {
                first_err = Some(e);
                break; // drops rx at scope end; workers see the hangup
            }
            slots[i] = Some(r);
        }
    });

    match first_err {
        Some(e) => Err(e),
        None => Ok(slots.into_iter().flatten().collect()),
    }
}

/// A submission refused by [`Service::try_submit`]: the admission queue
/// was full (or the service is shutting down). Carries the item back so
/// the caller can shed it with a typed response instead of losing it.
#[derive(Debug)]
pub struct Rejected<T>(pub T);

impl<T> std::fmt::Display for Rejected<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "admission queue full; item rejected")
    }
}

/// A long-lived worker pool with a *bounded* admission queue — the
/// persistent sibling of [`run_indexed`] for server workloads.
///
/// `jobs` worker threads loop over a shared queue of capacity
/// `queue_cap`. [`try_submit`](Service::try_submit) never blocks: when
/// every worker is busy and the queue is full it returns the item back
/// as [`Rejected`], which is the load-shedding hook — an overloaded
/// service answers "overloaded" in microseconds instead of stacking
/// unbounded work behind a slow request.
///
/// Dropping the service closes the queue, lets the workers drain what
/// was already admitted, and joins them (admitted work is never lost on
/// graceful shutdown).
pub struct Service<T: Send + 'static> {
    queue: Option<mpsc::SyncSender<T>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<T: Send + 'static> Service<T> {
    /// Spawns `jobs` workers (at least one) behind a queue of capacity
    /// `queue_cap` (at least one). Each admitted item runs
    /// `handler(worker_index, item)` on some worker thread.
    pub fn new<H>(jobs: usize, queue_cap: usize, handler: H) -> Self
    where
        H: Fn(usize, T) + Send + Sync + 'static,
    {
        let (tx, rx) = mpsc::sync_channel::<T>(queue_cap.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handler = Arc::new(handler);
        let workers = (0..jobs.max(1))
            .map(|worker| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || loop {
                    // Hold the lock only while claiming, not while
                    // handling, so workers drain the queue in parallel.
                    let item = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => return, // a handler panicked mid-claim
                    };
                    match item {
                        Ok(item) => handler(worker, item),
                        Err(mpsc::RecvError) => return, // queue closed
                    }
                })
            })
            .collect();
        Service {
            queue: Some(tx),
            workers,
        }
    }

    /// Admits `item` if a queue slot is free, without blocking.
    ///
    /// # Errors
    ///
    /// [`Rejected`] with the item when the queue is full — the caller
    /// sheds the load with a typed response.
    pub fn try_submit(&self, item: T) -> Result<(), Rejected<T>> {
        let Some(queue) = &self.queue else {
            return Err(Rejected(item));
        };
        queue.try_send(item).map_err(|e| match e {
            mpsc::TrySendError::Full(item) => Rejected(item),
            mpsc::TrySendError::Disconnected(item) => Rejected(item),
        })
    }
}

impl<T: Send + 'static> Drop for Service<T> {
    fn drop(&mut self) {
        // Closing the queue lets every worker drain and exit.
        self.queue = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered_for_any_job_count() {
        let items: Vec<usize> = (0..100).collect();
        let golden: Vec<usize> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got: Vec<usize> =
                run_indexed(&items, jobs, |_, &x| x * x, |_, _| Ok::<(), ()>(())).unwrap();
            assert_eq!(got, golden, "jobs={jobs}");
        }
    }

    #[test]
    fn collect_sees_every_result_exactly_once_on_the_caller_thread() {
        let items: Vec<usize> = (0..50).collect();
        let caller = std::thread::current().id();
        let mut seen = vec![0usize; items.len()];
        run_indexed(
            &items,
            4,
            |i, _| i,
            |i, &r| {
                assert_eq!(std::thread::current().id(), caller);
                assert_eq!(i, r);
                seen[i] += 1;
                Ok::<(), ()>(())
            },
        )
        .unwrap();
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn collect_error_stops_the_sweep() {
        let items: Vec<usize> = (0..1000).collect();
        let err = run_indexed(&items, 4, |i, _| i, |_, _| Err("journal full")).unwrap_err();
        assert_eq!(err, "journal full");
    }

    #[test]
    fn service_sheds_load_when_the_queue_is_full_and_never_hangs() {
        // One worker, one queue slot. Block the worker, fill the slot,
        // and the third submission must be rejected immediately.
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let block_rx = Mutex::new(block_rx);
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let svc = Service::new(1, 1, move |_, item: usize| {
            let _ = block_rx.lock().unwrap().recv();
            done2.fetch_add(item, Ordering::SeqCst);
        });
        svc.try_submit(1).unwrap(); // claimed by the (blocked) worker
                                    // Wait until the worker has actually claimed item 1, freeing the
                                    // queue slot for item 2.
        let start = std::time::Instant::now();
        loop {
            match svc.try_submit(2) {
                Ok(()) => break,
                Err(Rejected(_)) if start.elapsed() < std::time::Duration::from_secs(10) => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(r) => panic!("worker never claimed item 1: {r}"),
            }
        }
        // Queue now holds item 2; the next submission is shed, with the
        // item handed back.
        let Rejected(item) = svc.try_submit(3).expect_err("queue full must reject");
        assert_eq!(item, 3);
        // Unblock both admitted items; drop drains and joins.
        block_tx.send(()).unwrap();
        block_tx.send(()).unwrap();
        drop(svc);
        assert_eq!(done.load(Ordering::SeqCst), 1 + 2, "admitted work ran");
    }

    #[test]
    fn service_runs_admitted_items_across_workers() {
        let sum = Arc::new(AtomicUsize::new(0));
        let sum2 = Arc::clone(&sum);
        let svc = Service::new(4, 64, move |_, item: usize| {
            sum2.fetch_add(item, Ordering::SeqCst);
        });
        let mut submitted = 0usize;
        for i in 1..=50 {
            // With a 64-slot queue nothing here can be rejected.
            svc.try_submit(i).unwrap();
            submitted += i;
        }
        drop(svc); // graceful shutdown drains the queue
        assert_eq!(sum.load(Ordering::SeqCst), submitted);
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        let none: Vec<u8> = vec![];
        let got: Vec<u8> = run_indexed(&none, 8, |_, &x| x, |_, _| Ok::<(), ()>(())).unwrap();
        assert!(got.is_empty());
        let one = [7u8];
        let got: Vec<u8> = run_indexed(&one, 8, |_, &x| x + 1, |_, _| Ok::<(), ()>(())).unwrap();
        assert_eq!(got, vec![8]);
    }
}
