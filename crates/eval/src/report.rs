//! Plain-text rendering of the evaluation tables and figures.

use std::fmt::Write as _;

use crate::costs::{CostRow, Headline, ScalePoint};
use crate::grid::Grid;

/// Renders a Figure 28-style table: per-kernel speedups by architecture.
pub fn figure28(grid: &Grid) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 28: Kernel Speedup vs Register File Architecture");
    let _ = write!(s, "{:<20}", "Kernel");
    for a in &grid.archs {
        let _ = write!(s, "{:>22}", short(a));
    }
    let _ = writeln!(s);
    for row in &grid.rows {
        let _ = write!(s, "{:<20}", row.kernel);
        for i in 0..grid.archs.len() {
            let cell = &row.cells[i];
            let _ = write!(
                s,
                "{:>14} (II={:>3})",
                format!("{:.2}", row.speedup(i)),
                cell.ii
            );
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "{:<20}", "copies/iter");
    for i in 0..grid.archs.len() {
        let total: usize = grid.rows.iter().map(|r| r.cells[i].copies).sum();
        let _ = write!(s, "{:>22}", total);
    }
    let _ = writeln!(s);
    s
}

/// Renders the Figure 29 overall (geometric mean) speedups.
pub fn figure29(grid: &Grid) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 29: Overall Speedup vs Register File Architecture"
    );
    let overall = grid.overall_speedups();
    let mins = grid.min_speedups();
    for (i, a) in grid.archs.iter().enumerate() {
        let _ = writeln!(
            s,
            "{:<22} {:>5.2}   (min {:.2})  {}",
            short(a),
            overall[i],
            mins[i],
            bar(overall[i])
        );
    }
    s
}

/// Renders the Figures 25–27 cost bars.
pub fn figures_25_27(rows: &[CostRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figures 25-27: register file area / power / delay (normalized to central)"
    );
    for r in rows {
        let _ = writeln!(s, "{}:", short(&r.arch));
        let _ = writeln!(s, "  area  {:>6.3} {}", r.area, bar(r.area));
        let _ = writeln!(s, "  power {:>6.3} {}", r.power, bar(r.power));
        let _ = writeln!(s, "  delay {:>6.3} {}", r.delay, bar(r.delay));
    }
    s
}

/// Renders the §1/§8 headline ratios.
pub fn headline(h: &Headline, grid: Option<&Grid>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Headline comparisons (paper §1/§8 -> measured):");
    let (a, p, d) = h.dist_vs_central;
    let _ = writeln!(
        s,
        "  distributed vs central:    area 9% -> {:.0}%, power 6% -> {:.0}%, delay 37% -> {:.0}%",
        a * 100.0,
        p * 100.0,
        d * 100.0
    );
    let (a2, p2, _) = h.dist_vs_clustered;
    let _ = writeln!(
        s,
        "  distributed vs clustered4: area 56% -> {:.0}%, power 50% -> {:.0}%",
        a2 * 100.0,
        p2 * 100.0
    );
    if let Some(grid) = grid {
        let overall = grid.overall_speedups();
        if grid.archs.len() >= 4 {
            let _ = writeln!(
                s,
                "  performance: distributed/central 98% -> {:.0}%, distributed/clustered4 120% -> {:.0}%",
                overall[3] * 100.0,
                overall[3] / overall[2] * 100.0
            );
        }
    }
    s
}

/// Renders the §8 scaling projection.
pub fn scaling(points: &[ScalePoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Scaling projection (paper §8: at 48 units distributed needs 12% of clustered area, 9% power)"
    );
    let _ = writeln!(
        s,
        "{:>6} {:>8} {:>16} {:>16} {:>16}",
        "scale", "arith", "area/clustered", "power/clustered", "area/central"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>6} {:>8} {:>15.0}% {:>15.0}% {:>15.1}%",
            p.scale,
            p.arithmetic_units,
            p.area_ratio * 100.0,
            p.power_ratio * 100.0,
            p.area_vs_central * 100.0
        );
    }
    s
}

/// Renders Table 1 (the kernel inventory with static statistics).
pub fn table1(workloads: &[csched_kernels::Workload]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 1: Evaluation kernels");
    let _ = writeln!(
        s,
        "{:<20} {:>8} {:>7} {:>7} {:>7}  Description",
        "Name", "loop ops", "loads", "stores", "trip"
    );
    for w in workloads {
        let h = w.kernel.opcode_histogram();
        let _ = writeln!(
            s,
            "{:<20} {:>8} {:>7} {:>7} {:>7}  {}",
            w.kernel.name(),
            w.kernel.loop_ops().len(),
            h.get(&csched_machine::Opcode::Load).copied().unwrap_or(0),
            h.get(&csched_machine::Opcode::Store).copied().unwrap_or(0),
            w.trip,
            w.kernel.description()
        );
    }
    s
}

fn short(name: &str) -> String {
    name.replace("imagine-", "")
}

fn bar(v: f64) -> String {
    let n = (v * 40.0).round().clamp(0.0, 60.0) as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Cell, Row};
    use csched_core::SchedStats;

    fn tiny_grid() -> Grid {
        let cell = |arch: &str, ii: u32| Cell {
            arch: arch.into(),
            ii,
            copies: 0,
            stats: SchedStats::default(),
            validated: true,
            simulated: None,
            max_registers: 4,
            metrics: Default::default(),
        };
        Grid {
            archs: vec!["imagine-central".into(), "imagine-distributed".into()],
            rows: vec![
                Row {
                    kernel: "A".into(),
                    cells: vec![cell("imagine-central", 10), cell("imagine-distributed", 10)],
                },
                Row {
                    kernel: "B".into(),
                    cells: vec![cell("imagine-central", 10), cell("imagine-distributed", 20)],
                },
            ],
        }
    }

    #[test]
    fn speedups_and_geomean() {
        let g = tiny_grid();
        assert_eq!(g.rows[1].speedup(1), 0.5);
        let overall = g.overall_speedups();
        assert!((overall[0] - 1.0).abs() < 1e-12);
        assert!((overall[1] - (0.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(g.min_speedups()[1], 0.5);
        assert_eq!(g.kernels_at_parity(1, 0.99), 1);
    }

    #[test]
    fn renders_contain_key_fields() {
        let g = tiny_grid();
        let f28 = figure28(&g);
        assert!(f28.contains("central"));
        assert!(f28.contains("0.50"));
        let f29 = figure29(&g);
        assert!(f29.contains("min 0.50"));
    }
}

/// Renders the grid as CSV (one row per kernel × architecture) for
/// downstream plotting: `kernel,arch,ii,speedup,copies,max_registers`.
pub fn grid_csv(grid: &Grid) -> String {
    let mut s = String::from("kernel,arch,ii,speedup,copies,max_registers\n");
    for row in &grid.rows {
        for (i, cell) in row.cells.iter().enumerate() {
            let _ = writeln!(
                s,
                "{},{},{},{:.4},{},{}",
                row.kernel,
                short(&cell.arch),
                cell.ii,
                row.speedup(i),
                cell.copies,
                cell.max_registers
            );
        }
    }
    s
}

/// Renders the grid's full schedule metrics as one JSON document:
/// `{"archs":[...],"cells":[<ScheduleMetrics>...]}` with one cell object
/// per kernel × architecture. `extra` metrics (e.g. from kernels parsed
/// off the command line) are appended to the same `cells` array.
pub fn metrics_json(grid: &Grid, extra: &[csched_core::ScheduleMetrics]) -> String {
    use csched_core::trace::json_escape;
    let mut s = String::from("{\"archs\":[");
    for (i, a) in grid.archs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", json_escape(a));
    }
    s.push_str("],\"cells\":[");
    let mut first = true;
    let cells = grid
        .rows
        .iter()
        .flat_map(|r| r.cells.iter().map(|c| &c.metrics));
    for m in cells.chain(extra.iter()) {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&m.to_json());
    }
    s.push_str("]}");
    s
}

/// Renders a [`csched_ir::text::ParseError`] as a structured JSON object,
/// preserving the line, column and offending snippet as separate fields
/// instead of flattening them into a display string.
pub fn parse_error_json(file: &str, err: &csched_ir::text::ParseError) -> String {
    use csched_core::trace::{json_escape, TraceEvent};
    format!(
        "{{\"file\":\"{}\",\"error\":{}}}",
        json_escape(file),
        TraceEvent::parse_failed(err).to_json()
    )
}

/// Renders the cost rows as CSV: `arch,area,power,delay` (normalised).
pub fn cost_csv(rows: &[CostRow]) -> String {
    let mut s = String::from("arch,area,power,delay\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{},{:.6},{:.6},{:.6}",
            short(&r.arch),
            r.area,
            r.power,
            r.delay
        );
    }
    s
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use crate::grid::{Cell, Grid, Row};
    use csched_core::SchedStats;

    #[test]
    fn csv_shapes() {
        let cell = |arch: &str, ii: u32| Cell {
            arch: arch.into(),
            ii,
            copies: 1,
            stats: SchedStats::default(),
            validated: true,
            simulated: Some(true),
            max_registers: 7,
            metrics: Default::default(),
        };
        let grid = Grid {
            archs: vec!["imagine-central".into()],
            rows: vec![Row {
                kernel: "K".into(),
                cells: vec![cell("imagine-central", 5)],
            }],
        };
        let csv = grid_csv(&grid);
        assert!(csv.starts_with("kernel,arch,ii,"));
        assert!(csv.contains("K,central,5,1.0000,1,7"));

        let cost = cost_csv(&[CostRow {
            arch: "imagine-distributed".into(),
            area: 0.5,
            power: 0.25,
            delay: 0.125,
        }]);
        assert!(cost.contains("distributed,0.500000,0.250000,0.125000"));
    }

    #[test]
    fn metrics_json_document_shape() {
        let grid = Grid {
            archs: vec!["imagine-central".into()],
            rows: vec![Row {
                kernel: "K".into(),
                cells: vec![Cell {
                    arch: "imagine-central".into(),
                    ii: 5,
                    copies: 1,
                    stats: SchedStats::default(),
                    validated: true,
                    simulated: None,
                    max_registers: 7,
                    metrics: Default::default(),
                }],
            }],
        };
        let json = metrics_json(&grid, &[Default::default()]);
        assert!(json.starts_with("{\"archs\":[\"imagine-central\"],\"cells\":["));
        assert!(json.ends_with("]}"));
        // One grid cell plus one extra metrics object.
        assert_eq!(json.matches("\"kernel\":").count(), 2);
    }

    #[test]
    fn parse_errors_stay_structured() {
        let err = csched_ir::text::ParseError {
            line: 3,
            column: 9,
            snippet: "t2 = add t0, \"oops".into(),
            message: "unterminated string".into(),
        };
        let json = parse_error_json("kernels/bad.k", &err);
        assert!(json.contains("\"file\":\"kernels/bad.k\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.contains("\"column\":9"));
        // The snippet arrives as its own escaped field, not flattened
        // into a prose message.
        assert!(json.contains("\"snippet\":\"t2 = add t0, \\\"oops\""));
        assert!(json.contains("\"message\":\"unterminated string\""));
    }
}
