//! `chaosnet` — a deterministic fault-injecting TCP proxy.
//!
//! Sits between a [`serve`](crate::serve) client and server and injects
//! network faults on a schedule derived entirely from a splitmix64 seed
//! ([`csched_core::faultinject::ChaosRng`]): connection *i* through the
//! proxy always suffers the same [`FaultAction`], for the same seed, no
//! matter the thread timing — so every failure a soak run finds is
//! replayable by re-running with the same seed.
//!
//! The proxy is protocol-agnostic (it relays bytes), but its fault
//! vocabulary is chosen to hit every hardened edge of the serve stack:
//!
//! | fault | exercises |
//! |---|---|
//! | [`FaultAction::Latency`] | client socket timeouts, retry backoff |
//! | [`FaultAction::Disconnect`] | torn requests, worker EOF paths |
//! | [`FaultAction::TornWrite`] | `ERR malformed` on half a request |
//! | [`FaultAction::Slowloris`] | per-phase read deadlines on the server |
//! | [`FaultAction::Truncate`] | client-side response completeness checks |
//!
//! Every connection — faulted or clean — is recorded as a
//! [`FaultRecord`] in an in-memory log ([`ChaosProxy::log`]), so a
//! harness can assert that specific fault kinds actually fired.
//!
//! The upstream address is swappable at runtime
//! ([`ChaosProxy::set_upstream`]) so a harness can SIGKILL the server,
//! restart it on a fresh port, and keep the same proxy (and therefore
//! the same deterministic fault schedule) in front of it.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use csched_core::faultinject::ChaosRng;

/// A category of injectable network fault, used to restrict a
/// [`ChaosNetConfig`] to specific kinds (e.g. a test that wants only
/// slowloris connections).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Delay the request before forwarding any byte.
    Latency,
    /// Drop the connection (both directions) mid-request.
    Disconnect,
    /// Forward only a prefix of the request, then half-close upstream.
    TornWrite,
    /// Drip the request one byte per tick.
    Slowloris,
    /// Relay the request cleanly but cut the response short.
    Truncate,
}

impl FaultKind {
    /// All fault kinds, in a stable order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Latency,
        FaultKind::Disconnect,
        FaultKind::TornWrite,
        FaultKind::Slowloris,
        FaultKind::Truncate,
    ];

    /// Stable lowercase name (the CLI vocabulary of `--require-faults`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Latency => "latency",
            FaultKind::Disconnect => "disconnect",
            FaultKind::TornWrite => "torn-write",
            FaultKind::Slowloris => "slowloris",
            FaultKind::Truncate => "truncate",
        }
    }

    /// Parse a [`FaultKind::name`] back into a kind.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// The concrete fault injected on one proxied connection.
///
/// Parameters are drawn deterministically from the connection's seeded
/// substream, so the full action (not just its kind) is replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: relay both directions verbatim.
    Clean,
    /// Sleep `ms` before forwarding the first request byte.
    Latency {
        /// Delay before the first forwarded byte, in milliseconds.
        ms: u64,
    },
    /// Forward at most `after_bytes` of the request, then sever the
    /// connection in both directions. The client sees EOF/reset; the
    /// server sees a torn request.
    Disconnect {
        /// Request bytes forwarded before the cut.
        after_bytes: u64,
    },
    /// Forward exactly `at_byte` request bytes, then half-close the
    /// upstream write side. The server sees EOF mid-request (a torn
    /// write) and answers `ERR malformed`, which is still relayed back.
    TornWrite {
        /// Request bytes forwarded before the half-close.
        at_byte: u64,
    },
    /// Drip the first `slow_bytes` request bytes one byte per
    /// `tick_ms`, then relay the rest at full speed. Exercises the
    /// server's per-phase read deadline.
    Slowloris {
        /// Milliseconds between dripped bytes.
        tick_ms: u64,
        /// Number of bytes dripped before resuming full speed.
        slow_bytes: u64,
    },
    /// Relay the request cleanly but forward at most `response_bytes`
    /// of the response before closing the client side. The client sees
    /// a torn (incomplete) response.
    Truncate {
        /// Response bytes forwarded before the cut.
        response_bytes: u64,
    },
}

impl FaultAction {
    /// The kind of this action, or `None` for [`FaultAction::Clean`].
    pub fn kind(&self) -> Option<FaultKind> {
        match self {
            FaultAction::Clean => None,
            FaultAction::Latency { .. } => Some(FaultKind::Latency),
            FaultAction::Disconnect { .. } => Some(FaultKind::Disconnect),
            FaultAction::TornWrite { .. } => Some(FaultKind::TornWrite),
            FaultAction::Slowloris { .. } => Some(FaultKind::Slowloris),
            FaultAction::Truncate { .. } => Some(FaultKind::Truncate),
        }
    }
}

/// One proxied connection's entry in the fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Zero-based index of the connection in accept order.
    pub conn_index: u64,
    /// The action injected (possibly [`FaultAction::Clean`]).
    pub action: FaultAction,
}

/// Configuration for a [`ChaosProxy`]'s deterministic fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosNetConfig {
    /// Master seed; connection *i* uses
    /// [`ChaosRng::substream`]`(seed, i)`.
    pub seed: u64,
    /// Probability, in parts per thousand, that a connection is
    /// faulted at all (0 = pure relay, 1000 = every connection).
    pub fault_permille: u32,
    /// Upper bound for [`FaultAction::Latency`] delays.
    pub max_latency_ms: u64,
    /// Tick length for [`FaultAction::Slowloris`] drips.
    pub slow_tick_ms: u64,
    /// Maximum bytes dripped by a slowloris connection.
    pub slow_max_bytes: u64,
    /// Fault kinds eligible for injection. Empty disables all faults.
    pub kinds: Vec<FaultKind>,
}

impl Default for ChaosNetConfig {
    fn default() -> Self {
        ChaosNetConfig {
            seed: 0xc405,
            fault_permille: 200,
            max_latency_ms: 40,
            slow_tick_ms: 20,
            slow_max_bytes: 16,
            kinds: FaultKind::ALL.to_vec(),
        }
    }
}

impl ChaosNetConfig {
    /// The action connection `conn_index` will suffer. Pure function of
    /// `(self, conn_index)` — this *is* the replayable fault schedule,
    /// usable offline to predict or explain a run.
    pub fn action_for(&self, conn_index: u64) -> FaultAction {
        let mut rng = ChaosRng::substream(self.seed, conn_index);
        if self.kinds.is_empty() || rng.below_u64(1000) >= u64::from(self.fault_permille) {
            return FaultAction::Clean;
        }
        let pick = rng.below_u64(self.kinds.len() as u64) as usize;
        let kind = self
            .kinds
            .get(pick)
            .copied()
            .unwrap_or(FaultKind::Disconnect);
        match kind {
            FaultKind::Latency => FaultAction::Latency {
                ms: 1 + rng.below_u64(self.max_latency_ms.max(1)),
            },
            // Headers occupy the first few dozen bytes of a request, so
            // small offsets cut mid-header — the nastiest place.
            FaultKind::Disconnect => FaultAction::Disconnect {
                after_bytes: rng.below_u64(48),
            },
            FaultKind::TornWrite => FaultAction::TornWrite {
                at_byte: 8 + rng.below_u64(56),
            },
            FaultKind::Slowloris => FaultAction::Slowloris {
                tick_ms: self.slow_tick_ms,
                slow_bytes: 1 + rng.below_u64(self.slow_max_bytes.max(1)),
            },
            FaultKind::Truncate => FaultAction::Truncate {
                response_bytes: rng.below_u64(24),
            },
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How long a relay pump waits without a single byte in either
/// direction before declaring the connection dead. Generous enough for
/// a scheduling request; short enough that pumps never linger.
const PUMP_IDLE: Duration = Duration::from_secs(20);

/// Poll interval for relay reads — also the latency with which pumps
/// notice a proxy shutdown.
const PUMP_TICK: Duration = Duration::from_millis(100);

struct ProxyShared {
    upstream: Mutex<SocketAddr>,
    log: Mutex<Vec<FaultRecord>>,
    stop: AtomicBool,
    relay_errors: AtomicU64,
    /// Faults *actually injected*, by [`FaultKind::ALL`] order. The log
    /// records the scheduled action at accept time; these count at relay
    /// time, after the upstream connection succeeded — a fault scheduled
    /// against a dead upstream never fires and is never counted.
    injected: [AtomicU64; 5],
    /// Connections relayed clean (same fired-not-scheduled semantics).
    clean: AtomicU64,
}

/// A running fault-injecting proxy. Dropping it (or calling
/// [`ChaosProxy::shutdown`]) stops the acceptor and joins every relay
/// thread.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral localhost port, relaying to
    /// `upstream` under `config`'s fault schedule.
    pub fn start(config: ChaosNetConfig, upstream: SocketAddr) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream: Mutex::new(upstream),
            log: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            relay_errors: AtomicU64::new(0),
            injected: Default::default(),
            clean: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("chaosnet-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared, config))?;
        Ok(ChaosProxy {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point the proxy at a new upstream (e.g. a restarted server).
    /// Applies to connections accepted after the call; the fault
    /// schedule keeps counting connections where it left off.
    pub fn set_upstream(&self, upstream: SocketAddr) {
        *lock(&self.shared.upstream) = upstream;
    }

    /// Snapshot of every connection handled so far, in accept order.
    pub fn log(&self) -> Vec<FaultRecord> {
        lock(&self.shared.log).clone()
    }

    /// Number of connections accepted so far.
    pub fn connections(&self) -> u64 {
        lock(&self.shared.log).len() as u64
    }

    /// Count of relay-side I/O errors (excluding the faults the proxy
    /// injected on purpose). Useful as a smoke signal in harnesses.
    pub fn relay_errors(&self) -> u64 {
        self.shared.relay_errors.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far, by kind. Unlike
    /// [`log`](ChaosProxy::log) — which records the *scheduled* action
    /// at accept time — a fault counts here only once its relay got an
    /// upstream connection and applied it to live traffic, so soak
    /// assertions can require "N slowloris faults actually fired"
    /// instead of trusting the seed.
    pub fn fault_counts(&self) -> [(FaultKind, u64); 5] {
        let mut out = [(FaultKind::Latency, 0); 5];
        for (slot, kind) in out.iter_mut().zip(FaultKind::ALL) {
            *slot = (
                kind,
                self.shared.injected[Self::kind_slot(kind)].load(Ordering::Relaxed),
            );
        }
        out
    }

    /// Faults of one kind actually injected so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.shared.injected[Self::kind_slot(kind)].load(Ordering::Relaxed)
    }

    /// Connections relayed clean (no fault fired).
    pub fn clean_relays(&self) -> u64 {
        self.shared.clean.load(Ordering::Relaxed)
    }

    /// One deterministic JSON line of proxy-side counters, shaped like
    /// the serve layer's `STATS` line so harnesses can log both
    /// uniformly.
    pub fn stats_line(&self) -> String {
        let mut injected = String::new();
        for (i, (kind, n)) in self.fault_counts().iter().enumerate() {
            if i > 0 {
                injected.push(',');
            }
            injected.push_str(&format!("\"{}\":{}", kind.name(), n));
        }
        format!(
            "{{\"chaosnet\":{{\"connections\":{},\"clean\":{},\"relay_errors\":{},\
             \"injected\":{{{injected}}}}}}}",
            self.connections(),
            self.clean_relays(),
            self.relay_errors(),
        )
    }

    fn kind_slot(kind: FaultKind) -> usize {
        match kind {
            FaultKind::Latency => 0,
            FaultKind::Disconnect => 1,
            FaultKind::TornWrite => 2,
            FaultKind::Slowloris => 3,
            FaultKind::Truncate => 4,
        }
    }

    /// Stop accepting, sever in-flight relays, and join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ProxyShared>, config: ChaosNetConfig) {
    let mut conn_index: u64 = 0;
    let mut relays: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let action = config.action_for(conn_index);
        lock(&shared.log).push(FaultRecord { conn_index, action });
        conn_index += 1;
        let relay_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("chaosnet-relay-{conn_index}"))
            .spawn(move || {
                if let Err(_e) = relay(stream, action, &relay_shared) {
                    relay_shared.relay_errors.fetch_add(1, Ordering::Relaxed);
                }
            });

        match spawned {
            Ok(handle) => relays.push(handle),
            Err(_) => {
                shared.relay_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Reap finished relays so a long soak doesn't accumulate
        // thousands of joinable handles.
        relays.retain(|h| !h.is_finished());
    }
    for handle in relays {
        let _ = handle.join();
    }
}

/// Relay one connection under `action`. Injected faults are the point,
/// so fault-induced short-circuits return `Ok(())`; only unexpected
/// I/O failures bubble as errors.
fn relay(client: TcpStream, action: FaultAction, shared: &Arc<ProxyShared>) -> std::io::Result<()> {
    if let FaultAction::Latency { ms } = action {
        std::thread::sleep(Duration::from_millis(ms));
    }
    let upstream_addr = *lock(&shared.upstream);
    let upstream = match TcpStream::connect_timeout(&upstream_addr, Duration::from_secs(5)) {
        Ok(s) => s,
        Err(_) => {
            // Upstream down (e.g. mid-SIGKILL): sever the client so it
            // sees a clean connection failure, not a hang.
            let _ = client.shutdown(Shutdown::Both);
            return Ok(());
        }
    };
    // The upstream leg exists: the action is now being applied to live
    // traffic, so it counts as fired.
    match action.kind() {
        Some(kind) => {
            shared.injected[ChaosProxy::kind_slot(kind)].fetch_add(1, Ordering::Relaxed);
        }
        None => {
            shared.clean.fetch_add(1, Ordering::Relaxed);
        }
    }
    client.set_read_timeout(Some(PUMP_TICK))?;
    upstream.set_read_timeout(Some(PUMP_TICK))?;

    // Response pump (upstream -> client) runs concurrently so early
    // server errors (ERR overload / malformed) reach the client even
    // while the request is still being dripped.
    let response_limit = match action {
        FaultAction::Truncate { response_bytes } => Some(response_bytes),
        _ => None,
    };
    let client_for_response = client.try_clone()?;
    let upstream_for_response = upstream.try_clone()?;
    let stop_flag = StopView(Arc::clone(shared));
    let downstream = std::thread::Builder::new()
        .name("chaosnet-response".to_string())
        .spawn(move || {
            pump(
                upstream_for_response,
                client_for_response,
                response_limit,
                None,
                stop_flag,
            )
        })?;

    // Request pump (client -> upstream) on this thread, applying the
    // request-side fault.
    let request_result = match action {
        FaultAction::Clean | FaultAction::Latency { .. } | FaultAction::Truncate { .. } => pump(
            client.try_clone()?,
            upstream.try_clone()?,
            None,
            None,
            StopView(Arc::clone(shared)),
        ),
        FaultAction::Disconnect { after_bytes } => {
            let r = pump(
                client.try_clone()?,
                upstream.try_clone()?,
                Some(after_bytes),
                None,
                StopView(Arc::clone(shared)),
            );
            // Sever both directions: the client must see the failure.
            let _ = upstream.shutdown(Shutdown::Both);
            let _ = client.shutdown(Shutdown::Both);
            r
        }
        FaultAction::TornWrite { at_byte } => {
            let r = pump(
                client.try_clone()?,
                upstream.try_clone()?,
                Some(at_byte),
                None,
                StopView(Arc::clone(shared)),
            );
            // Half-close only: the server sees EOF mid-request and its
            // ERR malformed response still flows back to the client.
            let _ = upstream.shutdown(Shutdown::Write);
            r
        }
        FaultAction::Slowloris {
            tick_ms,
            slow_bytes,
        } => pump(
            client.try_clone()?,
            upstream.try_clone()?,
            None,
            Some(Drip {
                tick: Duration::from_millis(tick_ms),
                bytes: slow_bytes,
            }),
            StopView(Arc::clone(shared)),
        ),
    };
    // Request side finished (EOF, fault, or error): half-close upstream
    // so the server never waits on more request bytes.
    let _ = upstream.shutdown(Shutdown::Write);
    let pumped_response = downstream.join().unwrap_or(Ok(0))?;
    if response_limit.is_some_and(|limit| pumped_response >= limit) {
        // Truncation fired: sever the client so it sees EOF now.
        let _ = client.shutdown(Shutdown::Both);
        let _ = upstream.shutdown(Shutdown::Both);
    }
    request_result?;
    Ok(())
}

/// A clonable view of the proxy-wide stop flag for pump threads.
struct StopView(Arc<ProxyShared>);

impl StopView {
    fn stopped(&self) -> bool {
        self.0.stop.load(Ordering::SeqCst)
    }
}

/// Byte-drip configuration for slowloris pumps.
struct Drip {
    tick: Duration,
    bytes: u64,
}

/// Copy bytes `from` -> `to` until EOF, an optional byte `limit`, the
/// proxy stops, or the connection idles past [`PUMP_IDLE`]. Returns the
/// number of bytes forwarded.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    limit: Option<u64>,
    drip: Option<Drip>,
    stop: StopView,
) -> std::io::Result<u64> {
    let mut buf = [0u8; 4096];
    let mut forwarded: u64 = 0;
    let mut last_byte = Instant::now();
    loop {
        if stop.stopped() {
            let _ = to.shutdown(Shutdown::Both);
            return Ok(forwarded);
        }
        if let Some(limit) = limit {
            if forwarded >= limit {
                return Ok(forwarded);
            }
        }
        let want = match limit {
            Some(limit) => {
                let left = (limit - forwarded).min(buf.len() as u64) as usize;
                left.max(1)
            }
            None => buf.len(),
        };
        // `want` is clamped to the buffer length above, so the slice is
        // always in bounds.
        let n = match from.read(&mut buf[..want]) {
            Ok(0) => return Ok(forwarded),
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_byte.elapsed() > PUMP_IDLE {
                    let _ = to.shutdown(Shutdown::Both);
                    return Ok(forwarded);
                }
                continue;
            }
            // The peer was severed (often by our own fault on the
            // other pump): treat as EOF, not an error.
            Err(_) => return Ok(forwarded),
        };
        last_byte = Instant::now();
        let chunk = &buf[..n];
        let dripping = drip
            .as_ref()
            .is_some_and(|d| forwarded < d.bytes && !d.tick.is_zero());
        if dripping {
            for byte in chunk {
                if stop.stopped() {
                    let _ = to.shutdown(Shutdown::Both);
                    return Ok(forwarded);
                }
                if to.write_all(std::slice::from_ref(byte)).is_err() {
                    return Ok(forwarded);
                }
                let _ = to.flush();
                forwarded += 1;
                let still_dripping = drip.as_ref().is_some_and(|d| forwarded < d.bytes);
                if let Some(d) = drip.as_ref() {
                    if still_dripping || forwarded == d.bytes {
                        std::thread::sleep(d.tick);
                    }
                }
            }
        } else {
            if to.write_all(chunk).is_err() {
                return Ok(forwarded);
            }
            forwarded += n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_index() {
        let config = ChaosNetConfig::default();
        for i in 0..64 {
            assert_eq!(config.action_for(i), config.action_for(i));
        }
        let other = ChaosNetConfig {
            seed: config.seed + 1,
            ..ChaosNetConfig::default()
        };
        let same: Vec<FaultAction> = (0..64).map(|i| config.action_for(i)).collect();
        let diff: Vec<FaultAction> = (0..64).map(|i| other.action_for(i)).collect();
        assert_ne!(same, diff, "different seeds must yield different schedules");
    }

    #[test]
    fn fault_rate_tracks_permille() {
        let config = ChaosNetConfig {
            fault_permille: 200,
            ..ChaosNetConfig::default()
        };
        let faulted = (0..1000)
            .filter(|&i| config.action_for(i) != FaultAction::Clean)
            .count();
        assert!(
            (100..=300).contains(&faulted),
            "~20% of 1000 connections should fault, got {faulted}"
        );
        let none = ChaosNetConfig {
            fault_permille: 0,
            ..ChaosNetConfig::default()
        };
        assert!((0..1000).all(|i| none.action_for(i) == FaultAction::Clean));
        let empty = ChaosNetConfig {
            kinds: Vec::new(),
            fault_permille: 1000,
            ..ChaosNetConfig::default()
        };
        assert!((0..100).all(|i| empty.action_for(i) == FaultAction::Clean));
    }

    #[test]
    fn restricted_kinds_only_produce_those_kinds() {
        let config = ChaosNetConfig {
            fault_permille: 1000,
            kinds: vec![FaultKind::Slowloris],
            ..ChaosNetConfig::default()
        };
        for i in 0..100 {
            assert_eq!(config.action_for(i).kind(), Some(FaultKind::Slowloris));
        }
    }

    #[test]
    fn fault_kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::from_name("bogus"), None);
    }
}
