//! Per-request service observability: structured spans, deterministic
//! log-bucketed histograms, and the wire renderers behind the `METRICS`
//! verb.
//!
//! The paper's claim — communication-scheduling decisions dominate the
//! achieved II — is only auditable in a running service if every request
//! can say where its time and attempts went. This module is the memory
//! between the scheduler's [`TraceEvent`] stream and the wire:
//!
//! - a [`RequestSpan`] per request with stage timings
//!   (read/parse/cache-probe/schedule/journal/respond), attempts spent,
//!   the retry-ladder rung reached, the cache disposition, and a
//!   reject-reason rollup folded out of the trace stream by
//!   [`TraceCapture`];
//! - a fixed-capacity deterministic ring of recent spans (oldest
//!   evicted first, capacity fixed at construction — never reallocates
//!   under load);
//! - [`Histogram`]: HDR-style log-bucketed counters over pure integers,
//!   so identical recorded values render byte-identical JSON on every
//!   run and platform;
//! - [`Telemetry`]: the per-outcome aggregation
//!   (`ok|degraded|overload|deadline|sched|malformed|internal`) with
//!   [`metrics_json`](Telemetry::metrics_json) and a Prometheus-style
//!   [`prometheus`](Telemetry::prometheus) text exposition, plus
//!   [`validate_prometheus`] so CI can check the exposition's line
//!   grammar without a Prometheus install.
//!
//! Everything here is integer arithmetic and preallocated storage: the
//! hot path ([`Telemetry::record`]) is a mutex, a ring push, and a few
//! array increments.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use csched_core::trace::{decision_filter, RejectReason, TraceEvent, TraceSink};

// ---------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------

/// How a request ended, from the aggregation's point of view.
///
/// `Degraded` is split out of `Ok` (unlike the `STATS` counters, where
/// `degraded` subsets `ok`) because a degraded answer's latency profile
/// is exactly what the histogram split exists to expose: it ran to its
/// deadline by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Full-quality `OK` (warm hit or un-degraded cold schedule).
    Ok,
    /// `OK` whose schedule is best-so-far under an expired deadline.
    Degraded,
    /// Shed by admission control before reaching a worker.
    Overload,
    /// Deadline expired with nothing to return.
    Deadline,
    /// Typed scheduling failure.
    Sched,
    /// Parse, framing, or read-phase failure.
    Malformed,
    /// Cache I/O or invariant break.
    Internal,
}

impl Outcome {
    /// Every outcome, in the fixed rendering order.
    pub const ALL: [Outcome; 7] = [
        Outcome::Ok,
        Outcome::Degraded,
        Outcome::Overload,
        Outcome::Deadline,
        Outcome::Sched,
        Outcome::Malformed,
        Outcome::Internal,
    ];

    /// Stable lower-case label used in JSON keys and Prometheus labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Degraded => "degraded",
            Outcome::Overload => "overload",
            Outcome::Deadline => "deadline",
            Outcome::Sched => "sched",
            Outcome::Malformed => "malformed",
            Outcome::Internal => "internal",
        }
    }

    fn index(self) -> usize {
        match self {
            Outcome::Ok => 0,
            Outcome::Degraded => 1,
            Outcome::Overload => 2,
            Outcome::Deadline => 3,
            Outcome::Sched => 4,
            Outcome::Malformed => 5,
            Outcome::Internal => 6,
        }
    }
}

/// What the schedule cache said about a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Served warm from the cache.
    Hit,
    /// Cold: went to the scheduler (and was journaled on success).
    Miss,
    /// The request deliberately skipped the cache (`TRACE` always
    /// schedules fresh so its event stream is never empty).
    Bypass,
    /// The request never reached the cache probe (shed, malformed, or a
    /// non-schedule verb).
    None,
}

impl CacheDisposition {
    /// Stable label for JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Bypass => "bypass",
            CacheDisposition::None => "none",
        }
    }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// Microseconds spent in each stage of one request's life. Stages a
/// request never reached stay zero; the stages it did reach sum to no
/// more than the request's total wall time (they nest inside it, never
/// overlap it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Reading the header and body sections off the socket.
    pub read_us: u64,
    /// Parsing the kernel and machine texts.
    pub parse_us: u64,
    /// Probing the schedule cache (lock + lookup).
    pub cache_us: u64,
    /// Scheduling (the anytime ladder, validation included).
    pub sched_us: u64,
    /// Journaling the result (lock + append + optional fsync).
    pub journal_us: u64,
    /// Writing the response back.
    pub respond_us: u64,
}

impl StageTimes {
    /// Sum of all stage durations, saturating.
    pub fn sum_us(&self) -> u64 {
        self.read_us
            .saturating_add(self.parse_us)
            .saturating_add(self.cache_us)
            .saturating_add(self.sched_us)
            .saturating_add(self.journal_us)
            .saturating_add(self.respond_us)
    }
}

/// One request's structured record: identity, outcome, stage timings,
/// and the scheduler-side rollup folded out of its trace stream.
#[derive(Clone, Debug)]
pub struct RequestSpan {
    /// Monotonic per-server request id (also injected into `TRACE`
    /// event lines as the `"req"` key).
    pub id: u64,
    /// Wire verb (`"SCHED"`, `"TRACE"`).
    pub verb: &'static str,
    /// Kernel name, empty until parsed.
    pub kernel: String,
    /// How the request ended.
    pub outcome: Outcome,
    /// What the cache said.
    pub cache: CacheDisposition,
    /// Per-stage timings.
    pub stages: StageTimes,
    /// Total wall time of the request, microseconds.
    pub total_us: u64,
    /// Placement attempts charged against the budget.
    pub attempts: u64,
    /// Retry-ladder rung that produced the answer (0 = first rung).
    pub rung: u32,
    /// Placement rejects by [`RejectReason`], in declaration order
    /// (timing, issue_slot, read_permutation, write_permutation,
    /// closing).
    pub rejects: [u64; 5],
    /// Budget-stop events observed in the trace stream.
    pub deadline_events: u64,
    /// Achieved loop II (0 = none/straight-line/failed).
    pub ii: u32,
    /// `true` when the answer was best-so-far under an expired deadline.
    pub degraded: bool,
    /// Binding constraint from [`mod@csched_core::explain`]
    /// (`"recurrence"|"resource"|"transport"|"straightline"`), empty
    /// when no schedule was produced or the answer came from the cache.
    pub binding: &'static str,
}

impl RequestSpan {
    /// A fresh span for request `id`; every field starts at its "never
    /// happened" value.
    pub fn new(id: u64, verb: &'static str) -> Self {
        RequestSpan {
            id,
            verb,
            kernel: String::new(),
            outcome: Outcome::Internal,
            cache: CacheDisposition::None,
            stages: StageTimes::default(),
            total_us: 0,
            attempts: 0,
            rung: 0,
            rejects: [0; 5],
            deadline_events: 0,
            ii: 0,
            degraded: false,
            binding: "",
        }
    }

    /// Deterministic JSON object for this span (fixed key order, pure
    /// integers and escaped strings).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"verb\":\"{}\",\"kernel\":\"{}\",\"outcome\":\"{}\",\
             \"cache\":\"{}\",\"total_us\":{},\"read_us\":{},\"parse_us\":{},\
             \"cache_us\":{},\"sched_us\":{},\"journal_us\":{},\"respond_us\":{},\
             \"attempts\":{},\"rung\":{},\"rejects\":[{},{},{},{},{}],\
             \"deadline_events\":{},\"ii\":{},\"degraded\":{},\"binding\":\"{}\"}}",
            self.id,
            self.verb,
            csched_core::trace::json_escape(&self.kernel),
            self.outcome.as_str(),
            self.cache.as_str(),
            self.total_us,
            self.stages.read_us,
            self.stages.parse_us,
            self.stages.cache_us,
            self.stages.sched_us,
            self.stages.journal_us,
            self.stages.respond_us,
            self.attempts,
            self.rung,
            self.rejects[0],
            self.rejects[1],
            self.rejects[2],
            self.rejects[3],
            self.rejects[4],
            self.deadline_events,
            self.ii,
            u8::from(self.degraded),
            self.binding,
        )
    }
}

/// Microseconds since `start`, saturated into a `u64`.
pub fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------
// Trace capture: rollup + bounded event retention
// ---------------------------------------------------------------------

/// A [`TraceSink`] that folds the trace stream into a span-sized rollup
/// (reject reasons, ladder rungs, budget stops) and optionally retains
/// the first `cap` events for wire streaming.
///
/// Retention keeps the *first* events rather than the last: a `TRACE`
/// client's cap bounds how much a worker will ever write back, and the
/// head of the stream is where the schedule's decision structure lives
/// (the tail of a capped stream is mid-search noise). `total()` and
/// [`truncated`](TraceCapture::truncated) quantify what the cap
/// dropped.
#[derive(Debug)]
pub struct TraceCapture {
    rejects: [u64; 5],
    deadline_events: u64,
    rungs: u32,
    cap: usize,
    filter: Option<fn(&TraceEvent) -> bool>,
    events: Vec<TraceEvent>,
    total: u64,
}

impl TraceCapture {
    /// Rollup only — retains no events (the `SCHED` path).
    pub fn rollup_only() -> Self {
        TraceCapture::capture(0, false)
    }

    /// Rollup plus retention of the first `cap` events; `full` retains
    /// every event kind, otherwise only the stable decision-level
    /// stream ([`decision_filter`]) is retained.
    pub fn capture(cap: usize, full: bool) -> Self {
        TraceCapture {
            rejects: [0; 5],
            deadline_events: 0,
            rungs: 0,
            cap,
            filter: if full { None } else { Some(decision_filter) },
            events: Vec::with_capacity(cap.min(1024)),
            total: 0,
        }
    }

    /// Reject counts by [`RejectReason`] declaration order.
    pub fn rejects(&self) -> [u64; 5] {
        self.rejects
    }

    /// Budget-stop events seen.
    pub fn deadline_events(&self) -> u64 {
        self.deadline_events
    }

    /// Highest ladder rung the retry machinery advanced to (0 = the
    /// first configuration answered).
    pub fn rung(&self) -> u32 {
        self.rungs
    }

    /// The retained events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that passed the retention filter (retained or not).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` when the cap dropped at least one filtered event.
    pub fn truncated(&self) -> bool {
        self.total > self.events.len() as u64
    }

    fn reject_slot(reason: RejectReason) -> usize {
        match reason {
            RejectReason::Timing => 0,
            RejectReason::IssueSlot => 1,
            RejectReason::ReadPermutation => 2,
            RejectReason::WritePermutation => 3,
            RejectReason::Closing => 4,
        }
    }
}

impl TraceSink for TraceCapture {
    fn event(&mut self, event: TraceEvent) {
        match &event {
            TraceEvent::PlaceReject { reason, .. } => {
                self.rejects[TraceCapture::reject_slot(*reason)] += 1;
            }
            TraceEvent::DeadlineExceeded { .. } => self.deadline_events += 1,
            TraceEvent::RungAdvanced { attempt, .. } => {
                self.rungs = self.rungs.max(*attempt);
            }
            _ => {}
        }
        if self.cap == 0 {
            return;
        }
        if let Some(f) = self.filter {
            if !f(&event) {
                return;
            }
        }
        self.total += 1;
        if self.events.len() < self.cap {
            self.events.push(event);
        }
    }
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

/// Number of buckets: 16 exact unit buckets for 0..16, then four
/// sub-buckets per power of two up to `u64::MAX`.
const NUM_BUCKETS: usize = 16 + (64 - 4) * 4;

/// An HDR-style log-bucketed integer histogram.
///
/// Values 0..16 land in exact unit buckets; larger values land in one
/// of four sub-buckets per octave (relative error ≤ 25%, ≤ 12.5% above
/// 32). Everything is pure integer arithmetic over a fixed bucket
/// array, so the same recorded multiset renders byte-identical output
/// on every run, platform, and compiler — the property the golden
/// `METRICS` test and the determinism proptest pin.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index `value` lands in.
    pub fn bucket_index(value: u64) -> usize {
        if value < 16 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (msb - 2)) & 3) as usize;
        16 + (msb - 4) * 4 + sub
    }

    /// The smallest value that lands in bucket `index`.
    pub fn bucket_lo(index: usize) -> u64 {
        if index < 16 {
            return index as u64;
        }
        let octave = (index - 16) / 4 + 4;
        let sub = ((index - 16) % 4) as u64;
        (1u64 << octave) + (sub << (octave - 2))
    }

    /// The largest value that lands in bucket `index`.
    pub fn bucket_hi(index: usize) -> u64 {
        if index + 1 >= NUM_BUCKETS {
            return u64::MAX;
        }
        Histogram::bucket_lo(index + 1) - 1
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Occupied buckets as `(bucket_lo, count)` pairs, ascending.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Histogram::bucket_lo(i), c))
            .collect()
    }

    /// An upper bound for the `q`-quantile (0 ≤ q ≤ 100), from the
    /// bucket the rank falls in. 0 when empty.
    pub fn quantile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, rounding up.
        let rank = (self.count * q.min(100)).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Deterministic sparse JSON: `{"count":N,"sum":S,"max":M,`
    /// `"buckets":[[lo,count],...]}` with ascending `lo`.
    pub fn to_json(&self) -> String {
        let buckets = self
            .nonzero()
            .iter()
            .map(|(lo, c)| format!("[{lo},{c}]"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[{buckets}]}}",
            self.count, self.sum, self.max
        )
    }
}

// ---------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------

struct TelemetryInner {
    next_id: u64,
    ring_cap: usize,
    ring: VecDeque<RequestSpan>,
    latency: Vec<Histogram>,
    attempts: Vec<Histogram>,
    counts: [u64; Outcome::ALL.len()],
    rejects: [u64; 5],
    deadline_events: u64,
    trace_requests: u64,
    trace_events_streamed: u64,
}

/// The service-wide telemetry store: a span ring plus per-outcome
/// latency/attempts histograms, behind one mutex.
///
/// The schema version below covers the `METRICS` JSON *and* the
/// Prometheus exposition; bump it when either changes shape.
pub struct Telemetry {
    inner: Mutex<TelemetryInner>,
}

/// Version of the `METRICS` JSON schema (also exported by `STATS`).
pub const METRICS_SCHEMA: u32 = 1;

impl Telemetry {
    /// A store whose span ring holds the most recent `ring_cap`
    /// requests.
    pub fn new(ring_cap: usize) -> Self {
        Telemetry {
            inner: Mutex::new(TelemetryInner {
                next_id: 1,
                ring_cap,
                ring: VecDeque::with_capacity(ring_cap),
                latency: (0..Outcome::ALL.len()).map(|_| Histogram::new()).collect(),
                attempts: (0..Outcome::ALL.len()).map(|_| Histogram::new()).collect(),
                counts: [0; Outcome::ALL.len()],
                rejects: [0; 5],
                deadline_events: 0,
                trace_requests: 0,
                trace_events_streamed: 0,
            }),
        }
    }

    /// Allocates the next request id (monotonic from 1).
    pub fn next_request_id(&self) -> u64 {
        match self.inner.lock() {
            Ok(mut inner) => {
                let id = inner.next_id;
                inner.next_id += 1;
                id
            }
            Err(_) => 0,
        }
    }

    /// Records one finished request: folds it into the histograms and
    /// pushes it onto the ring (evicting the oldest at capacity).
    pub fn record(&self, span: RequestSpan) {
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        let slot = span.outcome.index();
        inner.counts[slot] += 1;
        inner.latency[slot].record(span.total_us);
        inner.attempts[slot].record(span.attempts);
        for (total, n) in inner.rejects.iter_mut().zip(span.rejects) {
            *total += n;
        }
        inner.deadline_events += span.deadline_events;
        if span.verb == "TRACE" {
            inner.trace_requests += 1;
        }
        if inner.ring_cap > 0 {
            if inner.ring.len() == inner.ring_cap {
                inner.ring.pop_front();
            }
            inner.ring.push_back(span);
        }
    }

    /// Accounts `n` trace events streamed back over the wire.
    pub fn add_trace_events(&self, n: u64) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.trace_events_streamed += n;
        }
    }

    /// Snapshot of the span ring, oldest first.
    pub fn spans(&self) -> Vec<RequestSpan> {
        match self.inner.lock() {
            Ok(inner) => inner.ring.iter().cloned().collect(),
            Err(_) => Vec::new(),
        }
    }

    /// One deterministic JSON line: schema, per-outcome counts, the
    /// attempts and latency histograms, the reject rollup, trace-verb
    /// counters, and the span ring.
    ///
    /// Key order is fixed, and the purely workload-determined content
    /// (schema, counts, attempts histograms, rejects) renders before
    /// the wall-clock-dependent content (latency, spans): two runs of
    /// the same seeded workload produce lines with an identical
    /// deterministic prefix even though their latency tails differ.
    pub fn metrics_json(&self) -> String {
        let Ok(inner) = self.inner.lock() else {
            return format!("{{\"schema\":{METRICS_SCHEMA}}}");
        };
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{{\"schema\":{METRICS_SCHEMA},\"requests\":{{"));
        for (i, o) in Outcome::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", o.as_str(), inner.counts[i]));
        }
        out.push_str("},\"attempts\":{");
        for (i, o) in Outcome::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                o.as_str(),
                inner.attempts[i].to_json()
            ));
        }
        out.push_str("},\"rejects\":{");
        for (i, r) in RejectReason::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", r.as_str(), inner.rejects[i]));
        }
        out.push_str(&format!(
            "}},\"deadline_events\":{},\"trace_requests\":{},\
             \"trace_events_streamed\":{},\"latency_us\":{{",
            inner.deadline_events, inner.trace_requests, inner.trace_events_streamed
        ));
        for (i, o) in Outcome::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                o.as_str(),
                inner.latency[i].to_json()
            ));
        }
        out.push_str("},\"spans\":[");
        for (i, span) in inner.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&span.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Prometheus-style text exposition: `# HELP`/`# TYPE` headers,
    /// per-outcome counters, and cumulative histograms with `le`
    /// buckets (only occupied boundaries are emitted, plus `+Inf`).
    pub fn prometheus(&self) -> String {
        let Ok(inner) = self.inner.lock() else {
            return String::new();
        };
        let mut out = String::with_capacity(2048);
        out.push_str("# HELP csched_requests_total Requests by outcome.\n");
        out.push_str("# TYPE csched_requests_total counter\n");
        for (i, o) in Outcome::ALL.iter().enumerate() {
            out.push_str(&format!(
                "csched_requests_total{{outcome=\"{}\"}} {}\n",
                o.as_str(),
                inner.counts[i]
            ));
        }
        out.push_str("# HELP csched_rejects_total Placement rejects by reason.\n");
        out.push_str("# TYPE csched_rejects_total counter\n");
        for (i, r) in RejectReason::ALL.iter().enumerate() {
            out.push_str(&format!(
                "csched_rejects_total{{reason=\"{}\"}} {}\n",
                r.as_str(),
                inner.rejects[i]
            ));
        }
        out.push_str("# HELP csched_request_duration_us Request latency, microseconds.\n");
        out.push_str("# TYPE csched_request_duration_us histogram\n");
        for (i, o) in Outcome::ALL.iter().enumerate() {
            prometheus_histogram(
                &mut out,
                "csched_request_duration_us",
                o.as_str(),
                &inner.latency[i],
            );
        }
        out.push_str("# HELP csched_request_attempts Placement attempts per request.\n");
        out.push_str("# TYPE csched_request_attempts histogram\n");
        for (i, o) in Outcome::ALL.iter().enumerate() {
            prometheus_histogram(
                &mut out,
                "csched_request_attempts",
                o.as_str(),
                &inner.attempts[i],
            );
        }
        out
    }
}

/// Emits one outcome's cumulative `le` buckets plus `_sum`/`_count`.
fn prometheus_histogram(out: &mut String, name: &str, outcome: &str, h: &Histogram) {
    let mut cumulative = 0u64;
    for (lo, c) in h.nonzero() {
        cumulative += c;
        // The bucket's upper bound is the le boundary; lo identifies the
        // bucket, hi bounds its contents.
        let le = Histogram::bucket_hi(Histogram::bucket_index(lo));
        out.push_str(&format!(
            "{name}_bucket{{outcome=\"{outcome}\",le=\"{le}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{outcome=\"{outcome}\",le=\"+Inf\"}} {}\n",
        h.count()
    ));
    out.push_str(&format!(
        "{name}_sum{{outcome=\"{outcome}\"}} {}\n",
        h.sum()
    ));
    out.push_str(&format!(
        "{name}_count{{outcome=\"{outcome}\"}} {}\n",
        h.count()
    ));
}

// ---------------------------------------------------------------------
// Prometheus grammar check
// ---------------------------------------------------------------------

/// Validates the line grammar of a Prometheus text exposition: every
/// line is a `# HELP`/`# TYPE` header or a
/// `name{label="value",...} number` sample whose name matches
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, braces balance, and the value parses as
/// a number (`+Inf` allowed as an `le` label only).
///
/// # Errors
///
/// The 1-based line number and what is wrong with it.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    for (n, line) in text.lines().enumerate() {
        let n = n + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return Err(format!("line {n}: comment is neither HELP nor TYPE"));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return Err(format!("line {n}: sample line has no value")),
        };
        if value_part.parse::<f64>().is_err() {
            return Err(format!("line {n}: value {value_part:?} is not a number"));
        }
        let name = match name_part.split_once('{') {
            Some((name, labels)) => {
                let Some(labels) = labels.strip_suffix('}') else {
                    return Err(format!("line {n}: unbalanced braces"));
                };
                for pair in labels.split(',') {
                    let Some((k, v)) = pair.split_once('=') else {
                        return Err(format!("line {n}: label {pair:?} has no ="));
                    };
                    if !is_metric_name(k) {
                        return Err(format!("line {n}: bad label name {k:?}"));
                    }
                    if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                        return Err(format!("line {n}: label value {v:?} is not quoted"));
                    }
                }
                name
            }
            None => name_part,
        };
        if !is_metric_name(name) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
    }
    Ok(())
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

// ---------------------------------------------------------------------
// Client-side snapshot parsing (the dashboard's half of the wire)
// ---------------------------------------------------------------------

/// A parsed `METRICS` JSON line — the subset the dashboard renders.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Schema version (0 when absent).
    pub schema: u64,
    /// Request counts by outcome label.
    pub requests: Vec<(String, u64)>,
    /// Latency histogram buckets by outcome label, `(bucket_lo, count)`
    /// ascending.
    pub latency: Vec<(String, Vec<(u64, u64)>)>,
    /// The span ring, oldest first, as raw JSON objects.
    pub spans: Vec<SpanSummary>,
}

/// The span fields the dashboard renders.
#[derive(Clone, Debug, Default)]
pub struct SpanSummary {
    /// Request id.
    pub id: u64,
    /// Kernel name.
    pub kernel: String,
    /// Outcome label.
    pub outcome: String,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Schedule-stage time, microseconds.
    pub sched_us: u64,
    /// Placement attempts.
    pub attempts: u64,
    /// Achieved II.
    pub ii: u64,
    /// Binding-constraint attribution.
    pub binding: String,
}

impl MetricsSnapshot {
    /// Parses the `METRICS` JSON line. Tolerant by design — missing
    /// sections parse as empty, so a newer server never strands an
    /// older dashboard.
    ///
    /// # Errors
    ///
    /// When `line` is not the object this module's
    /// [`Telemetry::metrics_json`] emits (no `"schema"` key).
    pub fn parse(line: &str) -> Result<MetricsSnapshot, String> {
        let line = line.trim();
        let mut snap = MetricsSnapshot {
            schema: scan_u64(line, "\"schema\":").ok_or("missing \"schema\" key")?,
            ..MetricsSnapshot::default()
        };
        if let Some(body) = scan_object(line, "\"requests\":") {
            snap.requests = scan_label_counts(body);
        }
        if let Some(body) = scan_object(line, "\"latency_us\":") {
            for (label, obj) in scan_label_objects(body) {
                let buckets =
                    scan_bucket_pairs(scan_array(&obj, "\"buckets\":").unwrap_or_default());
                snap.latency.push((label, buckets));
            }
        }
        if let Some(body) = scan_array(line, "\"spans\":") {
            for obj in split_objects(body) {
                snap.spans.push(SpanSummary {
                    id: scan_u64(obj, "\"id\":").unwrap_or(0),
                    kernel: scan_string(obj, "\"kernel\":").unwrap_or_default(),
                    outcome: scan_string(obj, "\"outcome\":").unwrap_or_default(),
                    total_us: scan_u64(obj, "\"total_us\":").unwrap_or(0),
                    sched_us: scan_u64(obj, "\"sched_us\":").unwrap_or(0),
                    attempts: scan_u64(obj, "\"attempts\":").unwrap_or(0),
                    ii: scan_u64(obj, "\"ii\":").unwrap_or(0),
                    binding: scan_string(obj, "\"binding\":").unwrap_or_default(),
                });
            }
        }
        Ok(snap)
    }
}

/// First integer following `key` in `text`.
pub fn scan_u64(text: &str, key: &str) -> Option<u64> {
    let at = text.find(key)? + key.len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scan_string(text: &str, key: &str) -> Option<String> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The balanced `{...}` body (braces stripped) following `key`.
fn scan_object<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let at = text.find(key)? + key.len();
    balanced(&text[at..], '{', '}')
}

/// The balanced `[...]` body (brackets stripped) following `key`.
fn scan_array<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let at = text.find(key)? + key.len();
    balanced(&text[at..], '[', ']')
}

fn balanced(text: &str, open: char, close: char) -> Option<&str> {
    if !text.starts_with(open) {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in text.char_indices() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(&text[open.len_utf8()..i]);
            }
        }
    }
    None
}

/// `"label":123,...` pairs from a flat object body.
fn scan_label_counts(body: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        let Some(endq) = rest.find('"') else { break };
        let label = rest[..endq].to_string();
        rest = &rest[endq + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse() {
            out.push((label, v));
        }
        rest = &rest[end..];
    }
    out
}

/// `"label":{...},...` pairs from an object-of-objects body.
fn scan_label_objects(body: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        let Some(endq) = rest.find('"') else { break };
        let label = rest[..endq].to_string();
        rest = &rest[endq + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let Some(obj) = balanced(rest, '{', '}') else {
            break;
        };
        // Advance past the whole object (body + both braces).
        rest = &rest[obj.len() + 2..];
        out.push((label, obj.to_string()));
    }
    out
}

/// `[lo,count]` pairs from a `[[1,2],[3,4]]` body (brackets stripped).
fn scan_bucket_pairs(body: &str) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find('[') {
        rest = &rest[open + 1..];
        let Some(close) = rest.find(']') else { break };
        let pair = &rest[..close];
        rest = &rest[close + 1..];
        if let Some((lo, c)) = pair.split_once(',') {
            if let (Ok(lo), Ok(c)) = (lo.trim().parse(), c.trim().parse()) {
                out.push((lo, c));
            }
        }
    }
    out
}

/// Splits a `{...},{...}` array body into its top-level objects.
fn split_objects(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find('{') {
        let Some(obj) = balanced(&rest[open..], '{', '}') else {
            break;
        };
        out.push(obj);
        rest = &rest[open + obj.len() + 2..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        // Every bucket's lo maps back to that bucket, and hi is the
        // last value that does.
        for index in 0..NUM_BUCKETS {
            let lo = Histogram::bucket_lo(index);
            assert_eq!(Histogram::bucket_index(lo), index, "lo of bucket {index}");
            let hi = Histogram::bucket_hi(index);
            assert_eq!(Histogram::bucket_index(hi), index, "hi of bucket {index}");
            if hi < u64::MAX {
                assert_eq!(
                    Histogram::bucket_index(hi + 1),
                    index + 1,
                    "hi+1 of bucket {index}"
                );
            }
        }
    }

    #[test]
    fn bucket_index_covers_extremes() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(15), 15);
        assert_eq!(Histogram::bucket_index(16), 16);
        assert!(Histogram::bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn histogram_quantiles_bound_recorded_values() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1116);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile(50) >= 3);
        assert_eq!(h.quantile(100), 1000);
        assert_eq!(Histogram::new().quantile(50), 0);
    }

    #[test]
    fn histogram_json_is_sparse_and_deterministic() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5u64, 5, 17, 900_000] {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().starts_with("{\"count\":4,\"sum\":900027,"));
        // Three distinct buckets, each with its lo bound.
        assert_eq!(a.nonzero().len(), 3);
        assert_eq!(a.nonzero()[0], (5, 2));
    }

    #[test]
    fn trace_capture_rolls_up_and_caps() {
        let mut cap = TraceCapture::capture(2, false);
        for i in 0..4u32 {
            cap.event(TraceEvent::IiStart { ii: i });
            cap.event(TraceEvent::PlaceReject {
                op: i,
                fu: 0,
                cycle: 0,
                reason: RejectReason::Timing,
            });
        }
        cap.event(TraceEvent::RungAdvanced {
            attempt: 2,
            relaxation: "x".into(),
            max_ii: 8,
        });
        // Rollup sees everything; capture keeps the first 2 decision
        // events (rejects and rung markers are filtered out).
        assert_eq!(cap.rejects()[0], 4);
        assert_eq!(cap.rung(), 2);
        assert_eq!(cap.events().len(), 2);
        assert_eq!(cap.total(), 4);
        assert!(cap.truncated());
    }

    #[test]
    fn telemetry_records_and_renders() {
        let t = Telemetry::new(2);
        assert_eq!(t.next_request_id(), 1);
        assert_eq!(t.next_request_id(), 2);
        for (id, outcome) in [(1, Outcome::Ok), (2, Outcome::Ok), (3, Outcome::Deadline)] {
            let mut span = RequestSpan::new(id, "SCHED");
            span.outcome = outcome;
            span.total_us = id * 100;
            span.attempts = id * 7;
            t.record(span);
        }
        // Ring holds the newest two of three.
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, 2);
        let json = t.metrics_json();
        assert!(json.starts_with("{\"schema\":1,\"requests\":{\"ok\":2,"));
        assert!(json.contains("\"deadline\":1"));
        let prom = t.prometheus();
        validate_prometheus(&prom).unwrap();
        assert!(prom.contains("csched_requests_total{outcome=\"ok\"} 2"));
    }

    #[test]
    fn metrics_snapshot_roundtrips() {
        let t = Telemetry::new(4);
        let mut span = RequestSpan::new(9, "SCHED");
        span.kernel = "fig4".into();
        span.outcome = Outcome::Ok;
        span.total_us = 1234;
        span.stages.sched_us = 1000;
        span.attempts = 42;
        span.ii = 3;
        span.binding = "resource";
        t.record(span);
        let snap = MetricsSnapshot::parse(&t.metrics_json()).unwrap();
        assert_eq!(snap.schema, u64::from(METRICS_SCHEMA));
        assert_eq!(
            snap.requests.iter().find(|(l, _)| l == "ok"),
            Some(&("ok".to_string(), 1))
        );
        let (label, buckets) = &snap.latency[0];
        assert_eq!(label, "ok");
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].1, 1);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].kernel, "fig4");
        assert_eq!(snap.spans[0].binding, "resource");
        assert_eq!(snap.spans[0].total_us, 1234);
    }

    #[test]
    fn validate_prometheus_rejects_bad_lines() {
        assert!(validate_prometheus("ok_metric 3\n").is_ok());
        assert!(validate_prometheus("x{a=\"b\"} 1.5\n").is_ok());
        assert!(validate_prometheus("# BOGUS comment\n").is_err());
        assert!(validate_prometheus("novalue\n").is_err());
        assert!(validate_prometheus("m{unclosed=\"x\" 1\n").is_err());
        assert!(validate_prometheus("m{a=unquoted} 1\n").is_err());
        assert!(validate_prometheus("9bad 1\n").is_err());
        assert!(validate_prometheus("m nan_value\n").is_err());
    }

    #[test]
    fn span_json_has_fixed_shape() {
        let mut span = RequestSpan::new(7, "TRACE");
        span.kernel = "k\"q".into();
        span.outcome = Outcome::Degraded;
        span.cache = CacheDisposition::Bypass;
        span.degraded = true;
        let json = span.to_json();
        assert!(json.starts_with("{\"id\":7,\"verb\":\"TRACE\",\"kernel\":\"k\\\"q\","));
        assert!(json.contains("\"outcome\":\"degraded\""));
        assert!(json.contains("\"cache\":\"bypass\""));
        assert!(json.ends_with("\"degraded\":1,\"binding\":\"\"}"));
    }
}
