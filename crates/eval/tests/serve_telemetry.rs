//! Wire-level telemetry acceptance tests:
//!
//! - `TRACE` streams the motivating example's decision trace
//!   byte-identical to the core golden JSONL (modulo the injected
//!   `"req"` field) and terminates with the summary + status lines;
//! - the `events=` cap bounds the stream and reports truncation;
//! - `METRICS` returns a parseable JSON line plus a grammar-valid
//!   Prometheus exposition whose counts reflect the served requests;
//! - span accounting: per-stage durations sum to at most the span's
//!   total wall time, for every span the server retains;
//! - `STATS` carries the schema version and a monotonic uptime;
//! - deadline-outcome requests land in the histograms and span ring.

use std::time::Duration;

use csched_eval::serve::{
    client_metrics, client_request, client_stats, client_trace, ServeConfig, Server,
};
use csched_eval::telemetry::{scan_u64, validate_prometheus, MetricsSnapshot};
use csched_ir::{Kernel, KernelBuilder};

const TIMEOUT: Duration = Duration::from_secs(60);

/// Figure 4 of the paper, as in `core/tests/trace_golden.rs`: the
/// kernel whose trace the PR-2 golden file records.
fn figure4() -> Kernel {
    let mut kb = KernelBuilder::new("fig4");
    let mem = kb.region("mem", true);
    let b = kb.straight_block("b");
    let a = kb.load(b, mem, 0i64.into(), 0i64.into());
    let bv = kb.push(b, csched_machine::Opcode::IAdd, [1i64.into(), 2i64.into()]);
    let cv = kb.push(b, csched_machine::Opcode::IAdd, [3i64.into(), 4i64.into()]);
    let s4 = kb.push(b, csched_machine::Opcode::IAdd, [a.into(), bv.into()]);
    let s5 = kb.push(b, csched_machine::Opcode::IAdd, [a.into(), cv.into()]);
    kb.store(b, mem, 10i64.into(), 0i64.into(), s4.into());
    kb.store(b, mem, 11i64.into(), 0i64.into(), s5.into());
    kb.build().unwrap()
}

fn figure4_request() -> (String, String) {
    (
        csched_ir::text::print(&figure4()),
        csched_machine::text::print(&csched_machine::toy::motivating_example()),
    )
}

fn merge_request() -> (String, String) {
    let w = csched_kernels::by_name("Merge").unwrap();
    (
        csched_ir::text::print(&w.kernel),
        csched_machine::text::print(&csched_machine::imagine::distributed()),
    )
}

/// Drops the injected `"req":N,` field from a streamed trace line,
/// recovering the core `TraceEvent::to_json` encoding.
fn strip_req(line: &str) -> String {
    let rest = line
        .strip_prefix("{\"req\":")
        .unwrap_or_else(|| panic!("trace line missing req field: {line}"));
    let comma = rest.find(',').expect("req field is never last");
    format!("{{{}", &rest[comma + 1..])
}

/// The acceptance criterion: issuing `TRACE` for the motivating example
/// streams, over the wire, the exact decision trace the PR-2 golden
/// file pinned — the service added transport, not interpretation.
#[test]
fn trace_streams_the_motivating_example_golden_byte_identically() {
    let (server, _) = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let (kernel, arch) = figure4_request();
    let response = client_trace(&addr, &kernel, &arch, None, false, TIMEOUT).unwrap();

    let mut got = String::new();
    let mut tail = Vec::new();
    for line in response.lines() {
        if line.starts_with('{') {
            got.push_str(&strip_req(line));
            got.push('\n');
        } else {
            tail.push(line.to_string());
        }
    }
    assert_eq!(tail.len(), 2, "want summary + status lines, got {tail:?}");
    assert!(
        tail[0].starts_with("TRACE end ") && tail[0].ends_with("truncated=0"),
        "unexpected summary: {}",
        tail[0]
    );
    assert!(
        tail[1].starts_with("OK ii="),
        "unexpected status: {}",
        tail[1]
    );

    let want = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../core/tests/golden/motivating_trace.jsonl"
    ))
    .expect("core golden trace present");
    assert_eq!(
        got, want,
        "wire trace diverged from the core golden JSONL (modulo req ids)"
    );
    server.shutdown();
}

/// `events=` caps the stream: the response carries exactly that many
/// JSONL lines, reports `truncated=1`, and still ends with a status.
#[test]
fn trace_event_cap_bounds_the_stream_and_reports_truncation() {
    let (server, _) = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let (kernel, arch) = figure4_request();
    let response = client_trace(&addr, &kernel, &arch, Some(3), false, TIMEOUT).unwrap();

    let events = response.lines().filter(|l| l.starts_with('{')).count();
    assert_eq!(events, 3, "cap must bound the stream:\n{response}");
    let summary = response
        .lines()
        .find(|l| l.starts_with("TRACE end "))
        .expect("summary line");
    assert!(
        summary.contains("events=3") && summary.ends_with("truncated=1"),
        "unexpected summary: {summary}"
    );
    assert!(
        response
            .lines()
            .last()
            .is_some_and(|l| l.starts_with("OK ii=")),
        "capped trace still answers:\n{response}"
    );

    // The client `events=` can only tighten the server-side cap.
    let config = ServeConfig {
        trace_event_cap: 2,
        ..ServeConfig::default()
    };
    let (tight, _) = Server::bind("127.0.0.1:0", config).unwrap();
    let wide = client_trace(
        &tight.addr().to_string(),
        &kernel,
        &arch,
        Some(1_000_000),
        false,
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(
        wide.lines().filter(|l| l.starts_with('{')).count(),
        2,
        "client may not widen the server cap:\n{wide}"
    );
    tight.shutdown();
    server.shutdown();
}

/// `METRICS` after a known request mix: the JSON line parses, the
/// Prometheus exposition passes the grammar check, and the counts
/// reflect what was served (including a deadline outcome).
#[test]
fn metrics_line_parses_and_prometheus_grammar_holds() {
    let (server, _) = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let (kernel, arch) = figure4_request();
    // Two ok requests (one miss, one hit) and one budget-starved
    // deadline on a harder kernel.
    for _ in 0..2 {
        let response = client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
        assert!(response.contains("OK ii="), "{response}");
    }
    let (merge, merge_arch) = merge_request();
    let starved = client_request(&addr, &merge, &merge_arch, Some(1), None, TIMEOUT).unwrap();
    assert!(starved.starts_with("ERR deadline"), "{starved}");

    let metrics = client_metrics(&addr, TIMEOUT).unwrap();
    let (json_line, prometheus) = metrics.split_once('\n').expect("JSON line + exposition");
    let snapshot = MetricsSnapshot::parse(json_line).expect("METRICS line parses");
    validate_prometheus(prometheus).expect("grammar-valid exposition");

    let count = |label: &str| {
        snapshot
            .requests
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |&(_, n)| n)
    };
    assert_eq!(count("ok"), 2, "{json_line}");
    assert_eq!(count("deadline"), 1, "{json_line}");
    assert!(
        prometheus.contains("csched_requests_total{outcome=\"ok\"} 2"),
        "{prometheus}"
    );
    // The ok latency histogram saw both requests.
    let ok_latency = snapshot
        .latency
        .iter()
        .find(|(l, _)| l == "ok")
        .map(|(_, buckets)| buckets.iter().map(|&(_, c)| c).sum::<u64>())
        .unwrap_or(0);
    assert_eq!(ok_latency, 2, "{json_line}");
    server.shutdown();
}

/// Span accounting: for every span the server retains, the per-stage
/// durations sum to at most the span's total wall time, and a cold
/// SCHED span attributes time to the scheduling stage.
#[test]
fn span_stage_durations_sum_to_at_most_total_wall_time() {
    let (server, _) = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let (kernel, arch) = figure4_request();
    for _ in 0..2 {
        client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
    }
    let metrics = client_metrics(&addr, TIMEOUT).unwrap();
    let json_line = metrics.lines().next().unwrap();
    let spans_section = json_line
        .split_once("\"spans\":[")
        .map(|(_, rest)| rest)
        .expect("spans array present");
    let spans: Vec<&str> = spans_section.split("},{").collect();
    assert!(spans.len() >= 2, "want both spans retained: {json_line}");
    for span in &spans {
        let total = scan_u64(span, "\"total_us\":").expect("total_us");
        let stage_sum: u64 = [
            "\"read_us\":",
            "\"parse_us\":",
            "\"cache_us\":",
            "\"sched_us\":",
            "\"journal_us\":",
            "\"respond_us\":",
        ]
        .iter()
        .map(|key| scan_u64(span, key).expect("stage field"))
        .sum();
        assert!(
            stage_sum <= total,
            "stage sum {stage_sum} exceeds total {total}: {span}"
        );
    }
    // The first (cold) span did real scheduling work; the second (warm)
    // span was a cache hit and skipped it.
    assert!(spans[0].contains("\"cache\":\"miss\""), "{json_line}");
    assert!(spans[1].contains("\"cache\":\"hit\""), "{json_line}");
    server.shutdown();
}

/// `STATS` leads with the schema version and a monotonic uptime, so
/// scrapers can dispatch on shape instead of guessing.
#[test]
fn stats_reports_schema_and_monotonic_uptime() {
    let (server, _) = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let first = client_stats(&addr, TIMEOUT).unwrap();
    assert!(first.starts_with("{\"schema\":1,\"uptime_ms\":"), "{first}");
    let t1 = scan_u64(&first, "\"uptime_ms\":").unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let second = client_stats(&addr, TIMEOUT).unwrap();
    let t2 = scan_u64(&second, "\"uptime_ms\":").unwrap();
    assert!(t2 >= t1, "uptime went backwards: {t1} -> {t2}");
    server.shutdown();
}

/// With telemetry disabled, the service still answers all verbs:
/// `METRICS` renders an empty store and spans are not retained.
#[test]
fn disabled_telemetry_serves_but_records_nothing() {
    let config = ServeConfig {
        telemetry: false,
        ..ServeConfig::default()
    };
    let (server, _) = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.addr().to_string();
    let (kernel, arch) = figure4_request();
    let response = client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
    assert!(response.contains("OK ii="), "{response}");
    let metrics = client_metrics(&addr, TIMEOUT).unwrap();
    let json_line = metrics.lines().next().unwrap();
    let snapshot = MetricsSnapshot::parse(json_line).expect("parses when disabled");
    let total: u64 = snapshot.requests.iter().map(|&(_, n)| n).sum();
    assert_eq!(total, 0, "disabled telemetry must not record: {json_line}");
    assert!(json_line.contains("\"spans\":[]"), "{json_line}");
    server.shutdown();
}
