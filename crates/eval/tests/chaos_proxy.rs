//! Integration tests for the deterministic fault-injecting proxy
//! ([`csched_eval::chaosnet`]) fronting a live scheduler service:
//! clean passthrough, schedule determinism, retry-through-faults
//! eventual success, slowloris boundedness, and upstream swap across a
//! server restart.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use csched_eval::chaosnet::{ChaosNetConfig, ChaosProxy, FaultAction, FaultKind};
use csched_eval::serve::{
    client_request, client_request_retry, client_stats, response_complete, RetryConfig,
    ServeConfig, Server,
};

const TIMEOUT: Duration = Duration::from_secs(30);

fn tmp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csched-chaos-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

fn merge_request() -> (String, String) {
    let w = csched_kernels::by_name("Merge").unwrap();
    (
        csched_ir::text::print(&w.kernel),
        csched_machine::text::print(&csched_machine::imagine::distributed()),
    )
}

fn start_server(cache: Option<PathBuf>) -> Server {
    let config = ServeConfig {
        jobs: 2,
        queue_cap: 8,
        io_timeout: Duration::from_millis(2_000),
        cache_path: cache,
        ..ServeConfig::default()
    };
    let (server, _) = Server::bind("127.0.0.1:0", config).unwrap();
    server
}

fn ok_line(response: &str) -> &str {
    response
        .lines()
        .find(|l| l.starts_with("OK "))
        .unwrap_or_else(|| panic!("no OK line in {response:?}"))
}

/// A fault-free proxy is transparent: the scheduling answer through the
/// proxy is byte-identical to the direct answer, and STATS flows too.
#[test]
fn clean_proxy_is_byte_transparent() {
    let server = start_server(None);
    let proxy = ChaosProxy::start(
        ChaosNetConfig {
            fault_permille: 0,
            ..ChaosNetConfig::default()
        },
        server.addr(),
    )
    .unwrap();
    let (kernel, arch) = merge_request();

    let direct = client_request(
        &server.addr().to_string(),
        &kernel,
        &arch,
        None,
        None,
        TIMEOUT,
    )
    .unwrap();
    let proxied = client_request(
        &proxy.addr().to_string(),
        &kernel,
        &arch,
        None,
        None,
        TIMEOUT,
    )
    .unwrap();
    // The cold/warm CACHE line differs by design; the answer must not.
    assert_eq!(ok_line(&direct), ok_line(&proxied));
    assert!(proxied.starts_with("CACHE hit\n"), "{proxied:?}");

    let stats = client_stats(&proxy.addr().to_string(), TIMEOUT).unwrap();
    assert!(stats.contains("\"cache\""), "{stats:?}");

    // Every connection was logged, all Clean.
    let log = proxy.log();
    assert!(log.len() >= 2);
    assert!(log.iter().all(|r| r.action == FaultAction::Clean));
    proxy.shutdown();
    server.shutdown();
}

/// The proxy's live log matches the pure offline schedule — the fault
/// plan really is a function of (seed, connection index).
#[test]
fn live_fault_log_matches_offline_schedule() {
    let server = start_server(None);
    let config = ChaosNetConfig {
        seed: 77,
        fault_permille: 500,
        // Cheap, instant faults only: this test is about the log.
        kinds: vec![FaultKind::Disconnect, FaultKind::Truncate],
        ..ChaosNetConfig::default()
    };
    let offline: Vec<FaultAction> = (0..8).map(|i| config.action_for(i)).collect();
    let proxy = ChaosProxy::start(config, server.addr()).unwrap();
    let (kernel, arch) = merge_request();
    for _ in 0..8 {
        // Outcomes vary (some conns are severed); the log is the point.
        let _ = client_request(
            &proxy.addr().to_string(),
            &kernel,
            &arch,
            None,
            None,
            TIMEOUT,
        );
    }
    let log = proxy.log();
    assert_eq!(log.len(), 8);
    for (i, record) in log.iter().enumerate() {
        assert_eq!(record.conn_index, i as u64);
        assert_eq!(record.action, offline[i], "connection {i}");
    }
    proxy.shutdown();
    server.shutdown();
}

/// Against ~40% injected faults, a no-retry client demonstrably fails
/// while the retrying client reaches 100% eventual success — the core
/// resilience claim of the issue.
#[test]
fn retrying_client_succeeds_where_no_retry_client_fails() {
    let config = ChaosNetConfig {
        seed: 9,
        fault_permille: 400,
        kinds: vec![
            FaultKind::Disconnect,
            FaultKind::TornWrite,
            FaultKind::Truncate,
        ],
        ..ChaosNetConfig::default()
    };
    // Preconditions on the (deterministic) schedule so the assertions
    // below cannot flake: the first 12 connections include a fault and
    // a clean slot, and no fault streak exceeds the retry budget.
    let schedule: Vec<FaultAction> = (0..64).map(|i| config.action_for(i)).collect();
    assert!(schedule[..12].iter().any(|a| *a != FaultAction::Clean));
    assert!(schedule[..12].contains(&FaultAction::Clean));
    let longest_streak = schedule
        .split(|a| *a == FaultAction::Clean)
        .map(<[FaultAction]>::len)
        .max()
        .unwrap_or(0);
    assert!(
        longest_streak <= 6,
        "streak {longest_streak} exceeds retry budget"
    );

    let server = start_server(None);
    let proxy = ChaosProxy::start(config, server.addr()).unwrap();
    let (kernel, arch) = merge_request();
    let addr = proxy.addr().to_string();

    // Phase 1 — no retries: some of the first 12 requests must fail.
    let mut failures = 0usize;
    for _ in 0..12 {
        match client_request(&addr, &kernel, &arch, None, None, TIMEOUT) {
            Ok(response) if response_complete(&response) && !response.contains("ERR ") => {}
            _ => failures += 1,
        }
    }
    assert!(failures > 0, "the no-retry client must demonstrably fail");

    // Phase 2 — with retries: every request eventually succeeds.
    let retry = RetryConfig {
        retries: 6,
        backoff_ms: 5,
        seed: 0xfeed,
    };
    for round in 0..12 {
        let (outcome, report) =
            client_request_retry(&addr, &kernel, &arch, None, None, TIMEOUT, &retry);
        let response = outcome.unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert!(response_complete(&response), "round {round}: {response:?}");
        assert!(
            response.contains("\nOK "),
            "round {round} ended in error: {response:?} after {report:?}"
        );
    }
    // The proxy must actually have injected something during all that.
    assert!(proxy.log().iter().any(|r| r.action != FaultAction::Clean));
    proxy.shutdown();
    server.shutdown();
}

/// A slowloris connection cannot pin a server worker past the read
/// phase budget: the server answers `ERR malformed` within the budget
/// and the next (clean, direct) request is served promptly.
#[test]
fn slowloris_is_cut_off_by_the_read_phase_budget() {
    let config = ServeConfig {
        jobs: 1,
        queue_cap: 2,
        read_phase_ms: 600,
        io_timeout: Duration::from_millis(2_000),
        ..ServeConfig::default()
    };
    let (server, _) = Server::bind("127.0.0.1:0", config).unwrap();
    let chaos = ChaosNetConfig {
        fault_permille: 1000,
        kinds: vec![FaultKind::Slowloris],
        slow_tick_ms: 100,
        slow_max_bytes: 10_000, // would take ~17 minutes to drip fully
        ..ChaosNetConfig::default()
    };
    let proxy = ChaosProxy::start(chaos, server.addr()).unwrap();
    let (kernel, arch) = merge_request();

    let started = Instant::now();
    let dripped = client_request(
        &proxy.addr().to_string(),
        &kernel,
        &arch,
        None,
        None,
        TIMEOUT,
    );
    let elapsed = started.elapsed();
    // The server must cut the drip off with a typed response (or sever
    // the socket) well inside the timeout — never serve it to the end.
    assert!(
        elapsed < Duration::from_secs(10),
        "slowloris pinned the worker for {elapsed:?}"
    );
    if let Ok(response) = &dripped {
        assert!(
            response.is_empty() || response.starts_with("ERR malformed"),
            "unexpected slowloris response: {response:?}"
        );
    }

    // The worker is free: a direct clean request completes.
    let direct = client_request(
        &server.addr().to_string(),
        &kernel,
        &arch,
        None,
        None,
        TIMEOUT,
    )
    .unwrap();
    assert!(direct.contains("\nOK "), "{direct:?}");
    proxy.shutdown();
    server.shutdown();
}

/// `set_upstream` carries one proxy (and its fault schedule) across a
/// server restart: the restarted server answers warm, byte-identically,
/// through the same proxy.
#[test]
fn upstream_swap_survives_server_restart() {
    let cache = tmp_path("swap");
    let server1 = start_server(Some(cache.clone()));
    let proxy = ChaosProxy::start(
        ChaosNetConfig {
            fault_permille: 0,
            ..ChaosNetConfig::default()
        },
        server1.addr(),
    )
    .unwrap();
    let (kernel, arch) = merge_request();
    let addr = proxy.addr().to_string();

    let cold = client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
    assert!(cold.starts_with("CACHE miss\n"), "{cold:?}");
    server1.shutdown();

    // Upstream gone: the proxy severs rather than hanging the client.
    let during = client_request(&addr, &kernel, &arch, None, None, TIMEOUT);
    assert!(
        match &during {
            Ok(r) => r.is_empty(),
            Err(_) => true,
        },
        "expected a fast failure while upstream is down, got {during:?}"
    );

    let server2 = start_server(Some(cache.clone()));
    proxy.set_upstream(server2.addr());
    let warm = client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
    assert!(warm.starts_with("CACHE hit\n"), "{warm:?}");
    assert_eq!(
        ok_line(&cold),
        ok_line(&warm),
        "warm must be byte-identical"
    );
    proxy.shutdown();
    server2.shutdown();
    let _ = std::fs::remove_file(&cache);
}
