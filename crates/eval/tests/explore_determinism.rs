//! The exploration engine's headline guarantees, pinned end to end:
//!
//! 1. **Thread-count invariance** — `explore` renders byte-identical
//!    JSON for `jobs` = 1, 2, and 8 on the same configuration.
//! 2. **Frontier soundness** — every reported frontier member is
//!    non-dominated under an independent recheck.
//! 3. **Crash-consistent resume** — a sweep killed mid-run (torn
//!    journal) resumes without re-scheduling finished candidates and
//!    renders the identical report.
//! 4. **Anchor placement** — the distributed machine shows up on or
//!    near the Pareto frontier, the paper's headline trade-off.

use csched_eval::campaign::{CellStatus, Journal};
use csched_eval::explore::{explore, ExploreConfig, ExploreReport};
use csched_ir::Kernel;
use csched_machine::gen::DesignSpace;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csched-explore-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn suite() -> Vec<csched_kernels::Workload> {
    ["Merge", "Sort"]
        .iter()
        .map(|n| csched_kernels::by_name(n).unwrap())
        .collect()
}

fn small_config() -> ExploreConfig {
    ExploreConfig {
        space: DesignSpace {
            clusters: (0, 2),
            alus: (2, 3),
            buses: (2, 2),
            rf_capacities: vec![16],
            write_ports: (1, 1),
        },
        candidates: 16,
        refine_rounds: 1,
        step_limit: 500_000,
        anchors: true,
        ..ExploreConfig::default()
    }
}

fn run(config: &ExploreConfig, jobs: usize) -> ExploreReport {
    let workloads = suite();
    let kernels: Vec<(&str, &Kernel)> = workloads
        .iter()
        .map(|w| (w.kernel.name(), &w.kernel))
        .collect();
    explore(config, &kernels, jobs, None, &HashMap::new()).unwrap()
}

#[test]
fn json_is_byte_identical_across_thread_counts_and_the_frontier_is_sound() {
    let config = small_config();
    let report = run(&config, 1);
    let golden = report.to_json();
    for jobs in [2, 8] {
        assert_eq!(
            run(&config, jobs).to_json(),
            golden,
            "jobs={jobs} must render the jobs=1 bytes"
        );
    }
    check_frontier_non_dominated(&report);
    check_distributed_anchor(&report);
}

fn check_frontier_non_dominated(report: &ExploreReport) {
    assert!(!report.frontier.is_empty());
    let scored: Vec<_> = report
        .candidates
        .iter()
        .filter_map(|c| c.score.map(|s| (c.name.clone(), s)))
        .collect();
    assert!(scored.len() >= 2, "need a populated trade-off space");
    for &idx in &report.frontier {
        let member = &report.candidates[idx];
        let mine = member.score.unwrap();
        assert_eq!(member.dominated_by, 0);
        for (name, other) in &scored {
            assert!(
                !other.dominates(&mine),
                "{} dominates frontier member {}",
                name,
                member.name
            );
        }
    }
    // Non-frontier scored candidates carry honest domination counts.
    for c in &report.candidates {
        if c.score.is_some() && !c.on_frontier() {
            assert!(c.dominated_by > 0, "{} claims 0 dominators", c.name);
        }
    }
}

fn check_distributed_anchor(report: &ExploreReport) {
    let dist = report
        .candidates
        .iter()
        .find(|c| c.name == "imagine-distributed")
        .expect("distributed anchor evaluated");
    assert!(
        dist.kernels.iter().all(|r| r.status == CellStatus::Ok),
        "distributed must schedule the suite: {:?}",
        dist.kernels
    );
    // The paper's headline: the distributed organisation trades a small
    // II increase for much cheaper register files. On (II, area, power,
    // delay) it must be on the frontier or dominated by at most one
    // design.
    assert!(
        dist.dominated_by <= 1,
        "distributed dominated by {} designs",
        dist.dominated_by
    );
}

#[test]
fn torn_journal_resume_reuses_candidates_and_reproduces_the_report() {
    let workloads = suite();
    let kernels: Vec<(&str, &Kernel)> = workloads
        .iter()
        .map(|w| (w.kernel.name(), &w.kernel))
        .collect();
    let config = small_config();

    // Uninterrupted run, journaling every cell. jobs=1 so the journal's
    // line order is candidate-major (parallel runs journal in completion
    // order), which lets the tear below split cleanly between candidates.
    let full_journal = temp_path("explore-full.jsonl");
    let golden = {
        let mut journal = Journal::open(&full_journal).unwrap();
        let report = explore(&config, &kernels, 1, Some(&mut journal), &HashMap::new()).unwrap();
        assert_eq!(report.resumed, 0);
        report.to_json()
    };

    // Crash simulation: keep the first candidate's two cells (one per
    // kernel), tear the third line mid-write, drop the rest.
    let torn_journal = temp_path("explore-torn.jsonl");
    let bytes = std::fs::read(&full_journal).unwrap();
    let mut newlines = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i);
    let second_newline = newlines.nth(1).unwrap();
    let cut = second_newline + 1 + 17;
    assert!(cut < bytes.len(), "journal long enough to tear");
    std::fs::File::create(&torn_journal)
        .unwrap()
        .write_all(&bytes[..cut])
        .unwrap();

    // Resume: the fully journaled candidate is reused (all-or-nothing
    // per candidate), everything else is recomputed, and the report is
    // byte-identical — at any thread count.
    let resume = Journal::load(&torn_journal).unwrap();
    assert_eq!(resume.len(), 2, "two whole cells survived the crash");
    let mut journal = Journal::open(&torn_journal).unwrap();
    let report = explore(&config, &kernels, 2, Some(&mut journal), &resume).unwrap();
    assert_eq!(
        report.resumed, 1,
        "exactly the fully-journaled candidate resumes"
    );
    assert_eq!(report.to_json(), golden);

    // The repaired journal now holds the full sweep: a second resume
    // re-schedules nothing.
    let resume_all = Journal::load(&torn_journal).unwrap();
    let report = explore(&config, &kernels, 4, None, &resume_all).unwrap();
    assert_eq!(report.resumed, report.candidates.len());
    assert_eq!(report.to_json(), golden);

    let _ = std::fs::remove_file(&full_journal);
    let _ = std::fs::remove_file(&torn_journal);
}

/// Acceptance-scale sweep: a 50+-candidate space, parallel, with the
/// full four-objective frontier. Ignored by default (expensive in debug
/// builds); ci.sh exercises the release binary equivalent.
#[test]
#[ignore = "acceptance-scale; run explicitly or via ci.sh"]
fn fifty_candidate_sweep_is_thread_invariant() {
    let config = ExploreConfig {
        candidates: 50,
        refine_rounds: 0,
        step_limit: 200_000,
        ..ExploreConfig::default()
    };
    let golden = run(&config, 1).to_json();
    assert_eq!(run(&config, 8).to_json(), golden);
}
