//! Property tests for the schedule cache's corruption tolerance: under
//! arbitrary byte mutations of the journal file, `ScheduleCache::open`
//! never panics, never invents entries, and every non-torn line is
//! accounted for as either loaded or quarantined/corrupt. A second
//! property checks compaction is behaviour-preserving: the compacted
//! journal reloads to the exact entry set of the uncompacted cache.

use std::path::PathBuf;

use csched_eval::serve::{CacheEntry, CompactionPolicy, ScheduleCache};
use proptest::prelude::*;

fn tmp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csched-cache-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.jsonl"))
}

fn entry(ii: u32, attempts: u64) -> CacheEntry {
    CacheEntry {
        ii,
        copies: u64::from(ii) % 5,
        max_registers: 9,
        attempts,
        degraded: false,
        limit: 200_000,
    }
}

/// Write a clean journal of `keys.len()` distinct-key entries and
/// return its bytes.
fn build_journal(path: &PathBuf, keys: u64) -> Vec<u8> {
    let _ = std::fs::remove_file(path);
    {
        let (mut cache, _) = ScheduleCache::open(Some(path), false).unwrap();
        for key in 0..keys {
            cache.insert(key, entry(key as u32 + 2, 100 + key)).unwrap();
        }
    }
    std::fs::read(path).unwrap()
}

proptest! {
    /// Mutating arbitrary bytes of the journal never panics the loader,
    /// never invents entries, and loses at most the mutated lines:
    /// `entries + quarantined <= K`, `entries >= K - touched lines`, and
    /// every quarantined key is backed by at least one corrupt line.
    #[test]
    fn mutated_journal_loads_without_panic_and_accounts_for_lines(
        keys in 2u64..6,
        mutations in prop::collection::vec((0usize..4096, 0u8..255), 1..6),
        tag in 0u64..1_000_000,
    ) {
        let path = tmp_path(&format!("mutate-{tag}"));
        let mut bytes = build_journal(&path, keys);

        // Line boundaries of the clean journal, to bound the damage.
        let mut line_of_byte = vec![0usize; bytes.len()];
        let mut line = 0usize;
        for (i, b) in bytes.iter().enumerate() {
            line_of_byte[i] = line;
            if *b == b'\n' {
                line += 1;
            }
        }

        let mut touched = std::collections::HashSet::new();
        for (pos, byte) in &mutations {
            let pos = pos % bytes.len();
            if bytes[pos] == *byte {
                continue; // no-op mutation
            }
            // Overwriting a newline merges a line with its successor;
            // writing a newline splits one — both damage bounded sets.
            touched.insert(line_of_byte[pos]);
            if bytes[pos] == b'\n' {
                touched.insert(line_of_byte[pos] + 1);
            }
            bytes[pos] = *byte;
        }
        std::fs::write(&path, &bytes).unwrap();

        let (cache, report) = ScheduleCache::open(Some(&path), false).unwrap();
        let k = keys as usize;
        prop_assert!(
            report.entries + report.quarantined <= k,
            "invented entries: {report:?} from {k} lines"
        );
        prop_assert!(
            report.entries >= k.saturating_sub(touched.len()),
            "lost untouched lines: {report:?}, touched {touched:?} of {k}"
        );
        prop_assert!(
            report.quarantined <= report.corrupt_lines,
            "quarantine without corrupt line: {report:?}"
        );
        prop_assert_eq!(cache.len(), report.entries);
        prop_assert_eq!(cache.quarantined(), report.quarantined);
        // Untouched keys still serve their exact entry.
        for key in 0..keys {
            let expect = entry(key as u32 + 2, 100 + key);
            if let Some(got) = cache.lookup(key, expect.limit) {
                prop_assert_eq!(got, &expect, "key {} served a mutated entry", key);
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// An unmutated journal always loads exactly what was written.
    #[test]
    fn clean_journal_loads_exactly(keys in 1u64..8, tag in 0u64..1_000_000) {
        let path = tmp_path(&format!("clean-{tag}"));
        build_journal(&path, keys);
        let (cache, report) = ScheduleCache::open(Some(&path), false).unwrap();
        prop_assert_eq!(report.entries, keys as usize);
        prop_assert_eq!(report.quarantined, 0usize);
        prop_assert_eq!(report.corrupt_lines, 0usize);
        for key in 0..keys {
            let expect = entry(key as u32 + 2, 100 + key);
            prop_assert_eq!(cache.lookup(key, expect.limit), Some(&expect));
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Compaction preserves behaviour: after any insert sequence (with
    /// duplicate keys and a policy tight enough to compact repeatedly),
    /// the compacted journal reloads to exactly the live entry set.
    #[test]
    fn compacted_journal_reloads_to_the_same_entry_set(
        inserts in prop::collection::vec((0u64..8, 1u32..50), 1..24),
        tag in 0u64..1_000_000,
    ) {
        let path = tmp_path(&format!("compact-{tag}"));
        let _ = std::fs::remove_file(&path);
        let policy = CompactionPolicy { max_journal_bytes: 256, max_entries: 1 << 16 };
        let (mut cache, _) = ScheduleCache::open_with(Some(&path), false, policy).unwrap();
        for (i, (key, ii)) in inserts.iter().enumerate() {
            cache.insert(*key, entry(*ii, i as u64)).unwrap();
        }
        let live: Vec<(u64, Option<CacheEntry>)> = (0..8)
            .map(|k| (k, cache.lookup(k, 200_000).cloned()))
            .collect();
        let compactions = cache.compactions();
        drop(cache);

        let (reloaded, report) = ScheduleCache::open_with(Some(&path), false, policy).unwrap();
        prop_assert_eq!(report.quarantined, 0usize);
        prop_assert_eq!(report.corrupt_lines, 0usize);
        for (key, expect) in &live {
            prop_assert_eq!(
                reloaded.lookup(*key, 200_000),
                expect.as_ref(),
                "key {} diverged after {} compactions",
                key,
                compactions
            );
        }
        // The journal holds no more lines than live entries + appends
        // since the last compaction — last-record-wins really shrank it.
        if compactions > 0 {
            let text = std::fs::read_to_string(&path).unwrap();
            prop_assert!(text.lines().count() <= inserts.len());
        }
        let _ = std::fs::remove_file(&path);
    }
}
