//! Telemetry determinism properties and the golden `METRICS` line:
//!
//! - histogram renderings are a pure function of the recorded multiset
//!   (byte-identical across runs, insertion orders, and instances);
//! - every recorded value lands in a bucket whose bounds contain it;
//! - the Prometheus exposition always passes the line-grammar check and
//!   is byte-identical for identically fed stores;
//! - a fixed synthetic request sequence renders a golden `METRICS` JSON
//!   line, byte for byte (regenerate after an intentional schema change
//!   with `UPDATE_GOLDEN=1 cargo test -p csched-eval --test
//!   telemetry_props`).

use csched_eval::telemetry::{
    validate_prometheus, Histogram, MetricsSnapshot, Outcome, RequestSpan, Telemetry,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

proptest! {
    /// Same multiset of values -> byte-identical JSON, regardless of
    /// insertion order (bucket counts are commutative).
    #[test]
    fn histogram_rendering_is_order_independent(
        values in prop::collection::vec(0u64..u64::MAX, 0..200),
        rotate in 0usize..200,
    ) {
        let mut forward = Histogram::new();
        for &v in &values {
            forward.record(v);
        }
        let mut rotated = Histogram::new();
        if !values.is_empty() {
            let pivot = rotate % values.len();
            for &v in values[pivot..].iter().chain(&values[..pivot]) {
                rotated.record(v);
            }
        }
        prop_assert_eq!(forward.to_json(), rotated.to_json());
        prop_assert_eq!(forward.count(), values.len() as u64);
    }

    /// Every value lands in a bucket whose [lo, hi] range contains it.
    #[test]
    fn bucket_bounds_contain_their_values(value in 0u64..u64::MAX) {
        let index = Histogram::bucket_index(value);
        prop_assert!(Histogram::bucket_lo(index) <= value);
        prop_assert!(value <= Histogram::bucket_hi(index));
    }

    /// Two telemetry stores fed the same span sequence render identical
    /// METRICS JSON and identical (grammar-valid) Prometheus text.
    #[test]
    fn identically_fed_stores_render_identically(
        spans in prop::collection::vec((0u64..1_000_000, 0u64..100_000, 0usize..7), 0..40),
    ) {
        let a = Telemetry::new(8);
        let b = Telemetry::new(8);
        for (i, &(total_us, attempts, outcome)) in spans.iter().enumerate() {
            for t in [&a, &b] {
                let mut span = RequestSpan::new(i as u64 + 1, "SCHED");
                span.outcome = Outcome::ALL[outcome];
                span.total_us = total_us;
                span.attempts = attempts;
                t.record(span);
            }
        }
        let json = a.metrics_json();
        prop_assert_eq!(&json, &b.metrics_json());
        let prom = a.prometheus();
        prop_assert_eq!(&prom, &b.prometheus());
        prop_assert!(validate_prometheus(&prom).is_ok());
        // The snapshot parser accepts every line the renderer emits.
        let snap = MetricsSnapshot::parse(&json).map_err(|e| {
            TestCaseError::fail(format!("unparseable METRICS: {e}"))
        })?;
        let total: u64 = snap.requests.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total, spans.len() as u64);
    }
}

/// A fixed request sequence produces the golden `METRICS` line byte for
/// byte. The sequence exercises every deterministic section: multiple
/// outcomes, reject rollups, ladder rungs, the span ring (with
/// eviction), and both histograms.
#[test]
fn fixed_sequence_renders_golden_metrics_line() {
    let t = Telemetry::new(2);
    let fixtures: [(u64, Outcome, u64, u64, u32); 4] = [
        (10, Outcome::Ok, 5, 3, 0),
        (100, Outcome::Ok, 5, 0, 0),
        (1_000, Outcome::Degraded, 12, 40, 2),
        (50, Outcome::Malformed, 0, 0, 0),
    ];
    for (i, &(total_us, outcome, attempts, rejects0, rung)) in fixtures.iter().enumerate() {
        let mut span = RequestSpan::new(i as u64 + 1, "SCHED");
        span.kernel = format!("k{i}");
        span.outcome = outcome;
        span.total_us = total_us;
        span.attempts = attempts;
        span.rejects[0] = rejects0;
        span.rung = rung;
        span.degraded = outcome == Outcome::Degraded;
        t.record(span);
    }
    let got = format!("{}\n", t.metrics_json());

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/metrics_line.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(path).expect(
        "golden file missing; regenerate with UPDATE_GOLDEN=1 \
         cargo test -p csched-eval --test telemetry_props",
    );
    assert_eq!(
        got, want,
        "METRICS line diverged from golden; if the schema change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and bump \
         METRICS_SCHEMA"
    );
}
