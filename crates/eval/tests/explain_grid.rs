//! Grid-wide agreement for the bottleneck attributor: on every Table 1
//! kernel × Imagine organisation cell, `csched_core::explain`'s RecMII
//! and ResMII must equal independent recomputations (the dependence
//! graph's recurrence bound and the public `res_mii` spread-load bound),
//! and the named binding must be consistent with how the achieved II
//! relates to those bounds.
//!
//! The full 10×4 grid schedules 40 cells, which is minutes under the
//! debug profile, so plain `cargo test` runs a 2×2 subgrid and the full
//! grid is `#[ignore]`d; CI runs it under the release profile with
//! `cargo test --release -p csched-eval --test explain_grid --
//! --include-ignored`.

use csched_core::{explain, res_mii, schedule_kernel, Binding, SchedulerConfig};
use csched_ir::DepGraph;
use csched_machine::{imagine, Architecture, Opcode};

/// Minimum latency any capable unit offers for `opcode` — the same
/// optimistic latency model the scheduler's own RecMII uses.
fn min_latency(arch: &Architecture, opcode: Opcode) -> u32 {
    arch.fus_for(opcode)
        .into_iter()
        .filter_map(|f| arch.fu(f).capability(opcode))
        .map(|c| c.latency)
        .min()
        .unwrap_or(1)
}

fn grid_archs() -> Vec<Architecture> {
    vec![
        imagine::central(),
        imagine::clustered(2),
        imagine::clustered(4),
        imagine::distributed(),
    ]
}

/// Schedules one cell and checks every explain contract on it: bound
/// agreement, binding consistency, ranking order, and counterfactual
/// sanity.
fn check_cell(arch: &Architecture, w: &csched_kernels::Workload) {
    let cell = format!("{} on {}", w.kernel.name(), arch.name());
    let s = schedule_kernel(arch, &w.kernel, SchedulerConfig::default())
        .unwrap_or_else(|e| panic!("{cell}: {e}"));
    let ex = explain::explain(arch, &w.kernel, &s);

    // Bounds agree with independent recomputation.
    let graph = DepGraph::build(&w.kernel, |opc| min_latency(arch, opc));
    let independent_rec = graph.rec_mii(&w.kernel);
    let independent_res = res_mii(arch, &w.kernel);
    assert_eq!(ex.rec_mii, independent_rec, "{cell}: RecMII");
    assert_eq!(ex.res_mii, independent_res, "{cell}: ResMII");
    assert_eq!(ex.ii, s.ii(), "{cell}: achieved II");

    // The named binding is consistent with how the II relates to the
    // bounds.
    match (&ex.binding, ex.ii) {
        (Binding::Straightline, ii) => {
            assert!(ii.is_none(), "{cell}: straightline binding but II={ii:?}");
        }
        (b, None) => panic!("{cell}: loop-free cell named binding {b:?}"),
        (Binding::Transport { occupancy, .. }, Some(ii)) => {
            assert!(
                ii > ex.rec_mii.max(ex.res_mii),
                "{cell}: transport binding but II {ii} within bounds \
                 (rec {}, res {})",
                ex.rec_mii,
                ex.res_mii
            );
            assert!(*occupancy > 0.0, "{cell}: idle transport resource named");
        }
        (Binding::Resource { load, .. }, Some(ii)) => {
            assert_eq!(ii, ex.res_mii, "{cell}: resource-bound II != ResMII");
            assert!(ex.res_mii >= ex.rec_mii, "{cell}: resource bound under rec");
            // The saturating unit's spread load rounds up to ResMII.
            assert_eq!(load.ceil() as u32, ex.res_mii, "{cell}: load vs ResMII");
        }
        (
            Binding::Recurrence {
                path,
                latency,
                distance,
            },
            Some(ii),
        ) => {
            assert_eq!(ii, ex.rec_mii, "{cell}: recurrence-bound II != RecMII");
            assert!(
                ex.rec_mii > ex.res_mii,
                "{cell}: recurrence bound under res"
            );
            assert!(!path.is_empty(), "{cell}: empty critical cycle");
            assert!(*distance > 0, "{cell}: recurrence with zero distance");
            // The reported cycle itself achieves the bound:
            // ceil(latency / distance) == RecMII.
            assert_eq!(
                latency.div_ceil(*distance),
                ex.rec_mii,
                "{cell}: critical cycle does not achieve RecMII"
            );
        }
        (other, Some(_)) => panic!("{cell}: unexpected binding {other:?}"),
    }

    // The ranking covers at least the issue resources and is sorted
    // most-occupied first.
    assert!(!ex.ranking.is_empty(), "{cell}: empty ranking");
    for pair in ex.ranking.windows(2) {
        assert!(
            pair[0].occupancy >= pair[1].occupancy,
            "{cell}: ranking not sorted"
        );
    }
    // Counterfactual bounds never exceed their baseline (adding
    // hardware cannot raise a lower bound).
    for c in &ex.counterfactuals {
        assert!(
            c.after <= c.before,
            "{cell}: counterfactual {:?} raised {} from {} to {}",
            c.change,
            c.metric,
            c.before,
            c.after
        );
    }
}

/// Fast subgrid for the debug-profile test run: three kernels that bind
/// differently (FFT saturates a unit, Merge carries a recurrence, DCT
/// goes transport-bound when distributed) on the two extreme
/// organisations.
#[test]
fn explain_agrees_on_the_subgrid() {
    for name in ["FFT", "Merge", "DCT"] {
        let w = csched_kernels::by_name(name).unwrap();
        for arch in [imagine::central(), imagine::distributed()] {
            check_cell(&arch, &w);
        }
    }
}

/// Every paper-grid cell. Minutes under the debug profile, so ignored
/// by default; CI runs it with `--release -- --include-ignored`.
#[test]
#[ignore = "full 10x4 grid; CI runs it under the release profile"]
fn explain_agrees_on_every_paper_grid_cell() {
    for w in csched_kernels::all() {
        for arch in grid_archs() {
            check_cell(&arch, &w);
        }
    }
}
