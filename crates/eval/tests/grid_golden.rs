//! Golden byte-identity for the paper grid: every Table 1 kernel ×
//! Imagine organisation cell must schedule to exactly the pinned
//! `(II, copies, attempts)` triple.
//!
//! The scheduler is deterministic, so these triples are part of its
//! observable contract: *any* drift — a reordered candidate list, a
//! changed tie-break, a table that admits a claim it used to reject —
//! shows up here even when the schedule remains valid. The hot-path data
//! structures of DESIGN.md §14 (dense modulo tables, the connectivity
//! cache, the port-run candidate ranking) were each landed against this
//! grid: they are pure reformulations, so the triples survived unchanged.
//!
//! The pinned values match `BENCH_baseline.json` / `BENCH_pregrid.json`
//! (`bench-json --compare` gates the same fields in CI). Update them only
//! when a change is *meant* to alter scheduling decisions, and say so in
//! the commit message.
//!
//! The full 10×4 grid takes minutes under the debug profile, so plain
//! `cargo test` runs a 3×2 subgrid and the full grid is `#[ignore]`d;
//! CI runs it with `cargo test --release -p csched-eval --test
//! grid_golden -- --include-ignored`.

use csched_core::{schedule_kernel, validate, SchedulerConfig};
use csched_machine::imagine;

/// A pinned `(ii, copies, attempts)` triple.
type Triple = (u32, u64, u64);

/// Pinned triples per kernel, in architecture order central,
/// clustered(2), clustered(4), distributed.
const GOLDEN: &[(&str, [Triple; 4])] = &[
    (
        "DCT",
        [(8, 0, 400), (10, 9, 1276), (11, 20, 3205), (9, 4, 942)],
    ),
    ("FFT", [(3, 0, 84), (4, 3, 214), (5, 8, 371), (3, 1, 113)]),
    (
        "FFT-U4",
        [
            (13, 0, 1413),
            (14, 17, 2287),
            (16, 23, 2164),
            (13, 11, 1836),
        ],
    ),
    (
        "FIR-FP",
        [
            (19, 0, 2824),
            (19, 34, 7319),
            (19, 63, 5781),
            (25, 38, 10611),
        ],
    ),
    (
        "FIR-INT",
        [
            (19, 0, 2826),
            (19, 34, 5554),
            (19, 64, 6208),
            (25, 44, 15519),
        ],
    ),
    (
        "Block Warp",
        [(6, 0, 151), (6, 9, 448), (6, 12, 740), (6, 0, 189)],
    ),
    (
        "Block Warp-U2",
        [(12, 0, 496), (12, 15, 980), (12, 23, 1140), (12, 0, 4550)],
    ),
    (
        "Triangle Transform",
        [
            (16, 0, 1383),
            (17, 25, 2476),
            (17, 39, 10513),
            (16, 4, 9459),
        ],
    ),
    (
        "Sort",
        [(7, 0, 323), (10, 11, 1940), (15, 12, 1195), (9, 0, 306)],
    ),
    ("Merge", [(7, 0, 9), (7, 0, 9), (9, 2, 77), (7, 0, 10)]),
];

fn arch_by_index(i: usize) -> csched_machine::Architecture {
    match i {
        0 => imagine::central(),
        1 => imagine::clustered(2),
        2 => imagine::clustered(4),
        _ => imagine::distributed(),
    }
}

fn check_cell(kernel_name: &str, arch_index: usize, want: Triple) {
    let w = csched_kernels::by_name(kernel_name)
        .unwrap_or_else(|| panic!("unknown kernel {kernel_name:?}"));
    let arch = arch_by_index(arch_index);
    let cell = format!("{} on {}", kernel_name, arch.name());
    let s = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default())
        .unwrap_or_else(|e| panic!("{cell}: {e}"));
    validate::validate(&arch, &w.kernel, &s)
        .unwrap_or_else(|e| panic!("{cell}: invalid schedule: {e:?}"));
    let got = (
        s.ii().unwrap_or(0),
        s.num_copies() as u64,
        s.stats().attempts,
    );
    assert_eq!(
        got, want,
        "{cell}: (ii, copies, attempts) drifted from the golden triple"
    );
}

fn golden_for(kernel: &str) -> &'static [Triple; 4] {
    GOLDEN
        .iter()
        .find(|(k, _)| *k == kernel)
        .map(|(_, t)| t)
        .unwrap_or_else(|| panic!("no golden triple for {kernel:?}"))
}

/// Fast subgrid for the debug-profile run: the two extreme organisations
/// on the kernels that stress different paths (FFT: copy on distributed;
/// Merge: recurrence-bound; DCT: transport-heavy when distributed).
#[test]
fn golden_triples_hold_on_the_subgrid() {
    for kernel in ["FFT", "Merge", "DCT"] {
        let triples = golden_for(kernel);
        for arch_index in [0, 3] {
            check_cell(kernel, arch_index, triples[arch_index]);
        }
    }
}

/// Every paper-grid cell. Minutes under the debug profile, so ignored by
/// default; CI runs it with `--release -- --include-ignored`.
#[test]
#[ignore = "full 10x4 grid; CI runs it under the release profile"]
fn golden_triples_hold_on_every_paper_grid_cell() {
    for (kernel, triples) in GOLDEN {
        for (arch_index, want) in triples.iter().enumerate() {
            check_cell(kernel, arch_index, *want);
        }
    }
}
