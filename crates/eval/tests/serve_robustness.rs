//! Robustness tests for the scheduler service: overload shedding,
//! corruption quarantine, crash-consistent restart, deadline handling,
//! and malformed-request rejection — each an ISSUE acceptance criterion.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use csched_eval::serve::{client_raw, client_request, client_stats, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(60);

fn tmp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csched-serve-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

fn merge_request() -> (String, String) {
    let w = csched_kernels::by_name("Merge").unwrap();
    (
        csched_ir::text::print(&w.kernel),
        csched_machine::text::print(&csched_machine::imagine::distributed()),
    )
}

fn fir_request() -> (String, String) {
    let w = csched_kernels::by_name("FIR-int").unwrap();
    (
        csched_ir::text::print(&w.kernel),
        csched_machine::text::print(&csched_machine::imagine::central()),
    )
}

/// Overload: with one worker pinned by a slow client and the one-slot
/// queue full, the next connection gets a typed `ERR overload` response
/// quickly — the server answers, it never hangs.
#[test]
fn overload_sheds_with_a_typed_response_and_never_hangs() {
    let config = ServeConfig {
        jobs: 1,
        queue_cap: 1,
        // Short I/O timeout so the deliberately stalled connections
        // below are reclaimed quickly after the assertion.
        io_timeout: Duration::from_millis(2_000),
        ..ServeConfig::default()
    };
    let (server, _) = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    // Pin the single worker with a connection that sends a partial
    // request (header, no body) and then stalls.
    let partial = b"SCHED\nKERNEL 10\n";
    let mut s1 = TcpStream::connect(addr).unwrap();
    s1.write_all(partial).unwrap();
    // Fill the single queue slot the same way. If the worker has not
    // claimed the first connection yet, the acceptor sheds this one
    // instead (we see its `ERR overload` bytes) — retry until it is
    // genuinely queued (the peek times out with nothing to read).
    let s2 = loop {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(partial).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        let mut buf = [0u8; 1];
        match s.peek(&mut buf) {
            Ok(_) => std::thread::sleep(Duration::from_millis(50)), // shed; retry
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break s; // silence: admitted and waiting in the queue
            }
            Err(e) => panic!("unexpected peek error: {e}"),
        }
    };
    // Worker pinned, queue full: the next connection must be shed fast.
    let start = std::time::Instant::now();
    let response = client_raw(&addr.to_string(), b"STATS\n", Duration::from_secs(10)).unwrap();
    assert!(
        response.starts_with("ERR overload"),
        "expected typed shed, got: {response}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shedding must be immediate, took {:?}",
        start.elapsed()
    );

    // Closing the stalled connections frees the worker (its blocked
    // body read sees EOF) and the service recovers.
    drop(s1);
    drop(s2);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match client_stats(&addr.to_string(), TIMEOUT) {
            Ok(stats) if stats.starts_with('{') => break,
            _ if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            other => panic!("service never recovered from overload: {other:?}"),
        }
    }
    let stats = client_stats(&addr.to_string(), TIMEOUT).unwrap();
    // At least the probe was shed (setup retries may add more).
    assert!(
        stats.contains("\"shed\":") && !stats.contains("\"shed\":0,"),
        "shed counter recorded: {stats}"
    );
    server.shutdown();
}

/// Corruption quarantine: bit-flip one cached entry on disk; the restart
/// quarantines exactly that key (the rest still serve warm), the next
/// request for it re-schedules and re-journals, and a second restart
/// loads the healed entry.
#[test]
fn bit_flipped_cache_entry_is_quarantined_then_healed_by_rescheduling() {
    let path = tmp_path("quarantine");
    let config = || ServeConfig {
        jobs: 2,
        cache_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let (merge_k, merge_a) = merge_request();
    let (fir_k, fir_a) = fir_request();
    let addr_of = |server: &Server| server.addr().to_string();

    // Populate two entries.
    let (server, load) = Server::bind("127.0.0.1:0", config()).unwrap();
    assert_eq!((load.entries, load.quarantined), (0, 0));
    let merge_cold =
        client_request(&addr_of(&server), &merge_k, &merge_a, None, None, TIMEOUT).unwrap();
    let fir_cold = client_request(&addr_of(&server), &fir_k, &fir_a, None, None, TIMEOUT).unwrap();
    assert!(merge_cold.starts_with("CACHE miss\nOK "), "{merge_cold}");
    assert!(fir_cold.starts_with("CACHE miss\nOK "), "{fir_cold}");
    server.shutdown();

    // Bit-flip the first entry's payload on disk.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    assert_eq!(lines.len(), 2);
    let flipped = lines[0].replacen("\"ii\":", "\"ii\":9", 1); // prefix a digit: value corrupted
    assert_ne!(flipped, lines[0]);
    lines[0] = flipped;
    std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

    // Restart: the corrupt key is quarantined, the clean one serves.
    let (server, load) = Server::bind("127.0.0.1:0", config()).unwrap();
    assert_eq!(load.entries, 1, "one clean entry survives");
    assert_eq!(load.quarantined, 1, "the corrupt key is quarantined");
    assert_eq!(load.corrupt_lines, 1);
    let fir_warm = client_request(&addr_of(&server), &fir_k, &fir_a, None, None, TIMEOUT).unwrap();
    assert!(
        fir_warm.starts_with("CACHE hit\n"),
        "clean entry must keep serving warm: {fir_warm}"
    );
    // The quarantined key misses, is re-scheduled, and matches the
    // original cold answer.
    let merge_requarantined =
        client_request(&addr_of(&server), &merge_k, &merge_a, None, None, TIMEOUT).unwrap();
    assert!(
        merge_requarantined.starts_with("CACHE miss\n"),
        "quarantined key must miss: {merge_requarantined}"
    );
    assert_eq!(
        merge_requarantined.trim_start_matches("CACHE miss\n"),
        merge_cold.trim_start_matches("CACHE miss\n"),
        "re-scheduling is deterministic"
    );
    let stats = client_stats(&addr_of(&server), TIMEOUT).unwrap();
    assert!(stats.contains("\"quarantined\":0"), "healed: {stats}");
    server.shutdown();

    // Second restart: the re-journaled entry wins over the corrupt line.
    let (server, load) = Server::bind("127.0.0.1:0", config()).unwrap();
    assert_eq!(load.entries, 2, "both keys clean after healing");
    assert_eq!(load.quarantined, 0);
    let merge_warm =
        client_request(&addr_of(&server), &merge_k, &merge_a, None, None, TIMEOUT).unwrap();
    assert!(merge_warm.starts_with("CACHE hit\n"), "{merge_warm}");
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Crash consistency: warm responses after a restart are byte-identical
/// to the responses before it (the cache key and entry rendering are
/// stable across processes).
#[test]
fn restart_serves_warm_hits_byte_identical_to_pre_restart() {
    let path = tmp_path("restart");
    let config = || ServeConfig {
        jobs: 2,
        cache_path: Some(path.clone()),
        durable: true, // exercise the fsync path end to end
        ..ServeConfig::default()
    };
    let (kernel, arch) = merge_request();

    let (server, _) = Server::bind("127.0.0.1:0", config()).unwrap();
    let addr = server.addr().to_string();
    let cold = client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
    let warm_before = client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
    assert!(cold.starts_with("CACHE miss\n"), "{cold}");
    assert!(warm_before.starts_with("CACHE hit\n"), "{warm_before}");
    assert_eq!(
        cold.trim_start_matches("CACHE miss\n"),
        warm_before.trim_start_matches("CACHE hit\n"),
        "warm OK line is byte-identical to the cold one"
    );
    server.shutdown();

    let (server, load) = Server::bind("127.0.0.1:0", config()).unwrap();
    assert_eq!(load.entries, 1);
    let warm_after = client_request(
        &server.addr().to_string(),
        &kernel,
        &arch,
        None,
        None,
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(
        warm_after, warm_before,
        "restart must not change the answer"
    );
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// A request whose placement-attempt budget is too small to finish the
/// ladder gets a typed `ERR deadline`, not a hang or a panic — and is
/// not cached, so a follow-up with real budget succeeds.
#[test]
fn exhausted_budget_is_a_typed_deadline_error_and_not_cached() {
    let (server, _) = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let (kernel, arch) = merge_request();
    let starved = client_request(&addr, &kernel, &arch, Some(1), None, TIMEOUT).unwrap();
    assert!(
        starved.starts_with("ERR deadline"),
        "expected typed deadline error, got: {starved}"
    );
    let retry = client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
    assert!(
        retry.starts_with("CACHE miss\nOK "),
        "failed request must not poison the cache: {retry}"
    );
    let stats = client_stats(&addr, TIMEOUT).unwrap();
    assert!(stats.contains("\"deadline\":1"), "{stats}");
    server.shutdown();
}

/// Malformed requests of several shapes are rejected with one-line typed
/// errors and never take the service down.
#[test]
fn malformed_requests_get_typed_errors_and_service_survives() {
    let (server, _) = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let cases: [&[u8]; 5] = [
        b"BOGUS\n",
        b"SCHED frobnicate=1\nKERNEL 0\nARCH 0\nEND\n",
        b"SCHED\nKERNEL nine\n",
        b"SCHED\nKERNEL 7\nnot ir!ARCH 0\nEND\n",
        b"\n",
    ];
    for request in cases {
        let response = client_raw(&addr, request, TIMEOUT).unwrap();
        assert!(
            response.starts_with("ERR malformed"),
            "request {:?} got: {response}",
            String::from_utf8_lossy(request)
        );
        assert_eq!(response.lines().count(), 1, "one-line error: {response}");
    }
    // The service still schedules fine afterwards.
    let (kernel, arch) = merge_request();
    let ok = client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
    assert!(ok.starts_with("CACHE miss\nOK "), "{ok}");
    let stats = client_stats(&addr, TIMEOUT).unwrap();
    assert!(stats.contains("\"malformed\":5"), "{stats}");
    server.shutdown();
}

/// The stats line always carries the full counter and cache sections.
#[test]
fn stats_reports_counters_and_cache_state() {
    let (server, _) = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let (kernel, arch) = fir_request();
    client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
    client_request(&addr, &kernel, &arch, None, None, TIMEOUT).unwrap();
    let stats = client_stats(&addr, TIMEOUT).unwrap();
    for needle in [
        "\"ok\":2",
        "\"hits\":1",
        "\"misses\":1",
        "\"cache\":{\"entries\":1",
        "\"quarantined\":0",
    ] {
        assert!(stats.contains(needle), "missing {needle} in {stats}");
    }
    server.shutdown();
}
