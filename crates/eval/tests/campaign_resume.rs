//! Golden crash/resume test: a campaign killed mid-run and resumed from
//! its (possibly torn) journal must produce a report byte-for-byte
//! identical to the uninterrupted run.

use csched_eval::campaign::{campaign_json, run_campaign, CellStatus, Journal};
use csched_ir::Kernel;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;

use csched_core::SchedulerConfig;
use csched_machine::imagine;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csched-campaign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn resumed_campaign_reproduces_the_uninterrupted_report() {
    let merge = csched_kernels::by_name("Merge").unwrap();
    let sort = csched_kernels::by_name("Sort").unwrap();
    let kernels: Vec<(&str, &Kernel)> = vec![("Merge", &merge.kernel), ("Sort", &sort.kernel)];
    let archs = [imagine::central(), imagine::clustered(2)];
    let config = SchedulerConfig::default();
    let step_limit = 500_000;

    // Uninterrupted run, journaling every cell.
    let full_journal = temp_path("full.jsonl");
    let golden = {
        let mut journal = Journal::open(&full_journal).unwrap();
        let result = run_campaign(
            &kernels,
            &archs,
            &config,
            step_limit,
            Some(&mut journal),
            &HashMap::new(),
        )
        .unwrap();
        assert_eq!(result.resumed, 0);
        assert!(result.all_ok(), "{:?}", result.records);
        campaign_json(&result.records)
    };

    // Simulate a crash: keep the first journal line whole, tear the
    // second mid-write, drop the rest.
    let torn_journal = temp_path("torn.jsonl");
    let bytes = std::fs::read(&full_journal).unwrap();
    let first_newline = bytes.iter().position(|&b| b == b'\n').unwrap();
    let cut = first_newline + 1 + 17; // 17 bytes into the second line
    assert!(cut < bytes.len(), "journal long enough to tear");
    std::fs::File::create(&torn_journal)
        .unwrap()
        .write_all(&bytes[..cut])
        .unwrap();

    // Resume: the torn tail is ignored, the completed cell is reused,
    // the interrupted and remaining cells are recomputed and journaled.
    let resume = Journal::load(&torn_journal).unwrap();
    assert_eq!(resume.len(), 1, "only the first cell survived the crash");
    let mut journal = Journal::open(&torn_journal).unwrap();
    let result = run_campaign(
        &kernels,
        &archs,
        &config,
        step_limit,
        Some(&mut journal),
        &resume,
    )
    .unwrap();
    assert_eq!(result.resumed, 1);
    assert_eq!(
        campaign_json(&result.records),
        golden,
        "resumed campaign must render the identical report"
    );

    // The repaired journal now checkpoints the full campaign: a second
    // resume recomputes nothing.
    let resume_all = Journal::load(&torn_journal).unwrap();
    assert_eq!(resume_all.len(), kernels.len() * archs.len());
    let result = run_campaign(&kernels, &archs, &config, step_limit, None, &resume_all).unwrap();
    assert_eq!(result.resumed, kernels.len() * archs.len());
    assert_eq!(campaign_json(&result.records), golden);

    let _ = std::fs::remove_file(&full_journal);
    let _ = std::fs::remove_file(&torn_journal);
}

#[test]
fn timed_out_cells_checkpoint_and_resume_like_any_other() {
    let merge = csched_kernels::by_name("Merge").unwrap();
    let kernels: Vec<(&str, &Kernel)> = vec![("Merge", &merge.kernel)];
    let archs = [imagine::central()];
    let config = SchedulerConfig::default();

    let journal_path = temp_path("starved.jsonl");
    let golden = {
        let mut journal = Journal::open(&journal_path).unwrap();
        let result = run_campaign(
            &kernels,
            &archs,
            &config,
            3,
            Some(&mut journal),
            &HashMap::new(),
        )
        .unwrap();
        assert_eq!(result.count(CellStatus::TimedOut), 1);
        assert!(result.records[0].attempts <= 3);
        campaign_json(&result.records)
    };

    // Resuming under the same configuration reuses the TimedOut record
    // verbatim instead of burning the budget again.
    let resume = Journal::load(&journal_path).unwrap();
    let result = run_campaign(&kernels, &archs, &config, 3, None, &resume).unwrap();
    assert_eq!(result.resumed, 1);
    assert_eq!(campaign_json(&result.records), golden);

    // A different step limit changes the fingerprint: nothing resumes.
    let result = run_campaign(&kernels, &archs, &config, 500_000, None, &resume).unwrap();
    assert_eq!(result.resumed, 0);
    assert!(result.all_ok());

    let _ = std::fs::remove_file(&journal_path);
}

/// The table1 binary collects kernel-file parse failures instead of
/// aborting, still prints its report, and exits nonzero.
#[test]
fn table1_binary_survives_a_bad_kernel_file_with_nonzero_exit() {
    let bad = temp_path("bad.k");
    std::fs::write(&bad, "kernel \"broken {{{").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_table1"))
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "parse failure must exit 2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("kernels match their scalar references"),
        "report must still be emitted: {stdout}"
    );
    let _ = std::fs::remove_file(&bad);
}
