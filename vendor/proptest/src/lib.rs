//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be vendored from crates.io. This crate implements the (small)
//! subset of the proptest API the workspace's property tests use, with the
//! same semantics where it matters:
//!
//! - `proptest! { ... }` expands each contained `fn` into a `#[test]` that
//!   runs the body `cases` times over deterministically generated inputs;
//! - strategies (`Range`, tuples, `any`, `Just`, `prop_map`,
//!   `prop::collection::vec`, `prop::option::of`, `prop_oneof!`) generate
//!   values from a seeded xorshift RNG — runs are reproducible;
//! - `prop_assert!` / `prop_assert_eq!` report the failing inputs.
//!
//! There is no shrinking: a failing case reports the generated inputs
//! verbatim. That is a deliberate simplification — the test surface is the
//! same, only failure minimisation is missing.

/// Deterministic xorshift64* RNG used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from a nonzero seed.
    pub fn seed(seed: u64) -> Self {
        TestRng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is irrelevant for testing purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Error type carried out of a failing property body.
pub mod test_runner {
    /// A failed `prop_assert!` (or explicit rejection).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Configuration for a property run. Mirrors the fields the workspace
    /// sets on the real `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Runs one property function over `config.cases` deterministic seeds.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// Creates a runner with the given configuration.
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Runs `case` once per seed; panics (failing the `#[test]`) on the
        /// first case whose body returns an error.
        pub fn run_named<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut crate::TestRng) -> Result<(), (TestCaseError, String)>,
        {
            for i in 0..self.config.cases {
                // Stable per-test seed: FNV-1a over the name, mixed with i.
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                let mut rng =
                    crate::TestRng::seed(h ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                if let Err((e, inputs)) = case(&mut rng) {
                    panic!(
                        "proptest: property `{name}` failed at case {i}/{}:\n  {}\nwith inputs:\n{inputs}",
                        self.config.cases, e.0
                    );
                }
            }
        }
    }
}

/// Strategies: how values are generated.
pub mod strategy {
    use crate::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (API-compat with real proptest).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
    }

    /// Uniform choice between heterogeneous strategies with a common value
    /// type; produced by `prop_oneof!`.
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Builds from the macro-collected arms (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Generates `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Generates `Some` three times out of four, `None` otherwise.
    pub struct OptionStrategy<S>(S);

    /// `prop::option::of(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules, as in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests. Each contained `fn name(arg in strategy, ...)
/// { body }` becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_named(stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), $arg
                    ));)+
                    s
                };
                let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                run().map_err(|e| (e, inputs))
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current property case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Fails the current property case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// One-of strategy choice: `prop_oneof![s1, s2, ...]` picks an arm uniformly
/// per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges respect their bounds.
        fn ranges_in_bounds(x in 3usize..9, y in 1u64..u64::MAX) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y >= 1);
        }

        /// Vec lengths respect the size range.
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 1..12)) {
            prop_assert!(!v.is_empty() && v.len() < 12);
        }

        /// Oneof picks only listed arms; option yields both variants over
        /// enough cases (not asserted per-case).
        fn oneof_arms(x in prop_oneof![Just(1u32), Just(2u32), 5u32..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::seed(42);
        let mut b = crate::TestRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
