//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be vendored from crates.io. This crate implements the subset of
//! the criterion API the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher`, `criterion_group!`,
//! `criterion_main!` — as a plain wall-clock timing harness: each bench
//! body is run a fixed number of iterations and the mean time per
//! iteration is printed. No statistics, no HTML reports, no history.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box`, matching criterion's API.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; [`Bencher::iter`] times the body.
pub struct Bencher {
    iterations: u64,
}

impl Bencher {
    /// Runs `body` `iterations` times and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warm-up run, then the timed loop.
        std_black_box(body());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(body());
        }
        let total = start.elapsed();
        let per_iter = total / self.iterations.max(1) as u32;
        println!("    time: {per_iter:?} / iter ({} iters)", self.iterations);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used for each bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{}/{id}", self.name);
        let mut b = Bencher {
            iterations: self.sample_size as u64,
        };
        f(&mut b);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("{}/{id}", self.name);
        let mut b = Bencher {
            iterations: self.sample_size as u64,
        };
        f(&mut b, input);
        self
    }

    /// Ends the group (no-op; prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Entry point handed to each `criterion_group!` target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{id}");
        let mut b = Bencher {
            iterations: self.sample_size as u64,
        };
        f(&mut b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
