#!/usr/bin/env bash
# Local CI gate: build, test, lint, and format-check the whole workspace.
#
# Usage: ./ci.sh
#
# The lint and format steps degrade gracefully when the toolchain lacks
# the `clippy` or `rustfmt` components (e.g. a minimal container); the
# build and test steps are mandatory. `csched-core`, `csched-ir`, and
# `csched-eval` (including the `explore`, `soak`, `dash`, and `oracle`
# binaries, which carry their own crate-level attributes; the `chaosnet`,
# `telemetry`, and `gap` modules are covered by the csched-eval lib
# attribute, as is `csched_core::exact` by the csched-core one)
# additionally carry
# `deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)` outside
# test code, so the clippy step doubles as the panic-free gate for the
# scheduling pipeline, the evaluation harness, the design-space search,
# and the chaos/soak tooling.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release --workspace"
cargo build --release --workspace

step "cargo test -q --workspace"
cargo test -q --workspace

# Seeded multi-fault chaos smoke: a tiny deterministic campaign (a few
# hundred milliseconds on the release build from step 1) that degrades
# the distributed machine by random fault combinations and asserts the
# watchdog contract — valid schedule, typed error, or in-deadline stop;
# never a panic, never a budget overrun. Exit 1 means a violation.
step "chaos smoke campaign (seeded, deterministic)"
cargo run -q --release -p csched-eval --bin chaos -- \
    --seed 3 --runs 6 --max-faults 2 --step-limit 20000 --kernels 2 \
    --arch distributed > /dev/null

# Full-grid explain agreement: every Table 1 kernel × Imagine
# organisation, checked against independent RecMII/ResMII computations.
# Ignored under the debug profile (minutes); seconds on release.
step "explain full-grid agreement (release)"
cargo test -q --release -p csched-eval --test explain_grid -- --include-ignored

# Golden byte-identity for the full paper grid: every kernel ×
# organisation cell must schedule to exactly the pinned
# (II, copies, attempts) triple — any drift in a candidate order,
# tie-break, or table admission fails here even if the schedule stays
# valid. Ignored under the debug profile (minutes); seconds on release.
step "golden (II, copies, attempts) triples on the full grid (release)"
cargo test -q --release -p csched-eval --test grid_golden -- --include-ignored

# Perf-regression bench smoke: re-measure a small kernel×arch grid and
# diff it against the committed baseline. Deterministic fields (ok, II,
# copies, attempts) must match exactly; wall clock is advisory because
# the baseline was recorded on different hardware.
step "bench smoke vs BENCH_baseline.json"
cargo run -q --release -p csched-eval --bin bench-json -- \
    --label ci --reps 2 --kernels FFT,Merge,DCT --archs central,distributed
cargo run -q --release -p csched-eval --bin bench-json -- \
    --compare BENCH_baseline.json BENCH_ci.json

# Design-space exploration smoke: a small sampled sweep on 2 worker
# threads must print JSON byte-identical to the single-threaded run
# (candidates merge in index order; the report carries no thread count
# or wall clock). The full determinism suite — including the ignored
# 50-candidate acceptance sweep at --jobs 8 — then runs on the release
# profile, where it takes seconds.
step "explore smoke (thread-count invariance)"
cargo run -q --release -p csched-eval --bin explore -- \
    --kernels Merge,Sort --candidates 6 --rounds 0 --step-limit 200000 \
    --jobs 1 --json > EXPLORE_ci_j1.json
cargo run -q --release -p csched-eval --bin explore -- \
    --kernels Merge,Sort --candidates 6 --rounds 0 --step-limit 200000 \
    --jobs 2 --json > EXPLORE_ci_j2.json
diff EXPLORE_ci_j1.json EXPLORE_ci_j2.json

step "explore determinism suite incl. acceptance sweep (release)"
cargo test -q --release -p csched-eval --test explore_determinism -- --include-ignored

# Bottleneck-attribution smoke: the explain binary must name a binding.
step "explain smoke (FFT on distributed)"
cargo run -q --release -p csched-eval --bin explain -- FFT distributed --json \
    | grep -q '"binding"'

# Exact-oracle gap smoke: certify three small paper-grid cells under a
# tight per-cell step budget and check the gap-report JSON schema. The
# Merge kernel certifies on central/clustered2/clustered4 well inside
# 500k steps each (clustered4 also exhibits a real heuristic gap of 2);
# a soundness disagreement between the oracle and the validator — or a
# cell failing to certify — fails this step.
step "exact-oracle gap smoke (3 certified cells + gap-v1 schema)"
cargo run -q --release -p csched-eval --bin oracle -- \
    --cell Merge central --cell Merge clustered2 --cell Merge clustered4 \
    --exact-steps 500000 > GAP_ci.json
grep -q '"schema":"gap-v1"' GAP_ci.json
grep -q '"certified":3' GAP_ci.json
grep -q '"disagreements":0' GAP_ci.json
rm -f GAP_ci.json

# Scheduler-service smoke: start the server on a persistent cache, drive
# malformed + cold + warm traffic (the bench gates warm throughput at
# >= 10x cold), SIGKILL the server mid-request, restart it on the same
# journal, and assert the cache reloads with zero corrupt or quarantined
# entries and keeps serving warm hits.
step "serve smoke (overload/crash/cache consistency)"
SERVE_DIR="$(mktemp -d)"
SERVE_CACHE="$SERVE_DIR/serve_cache.jsonl"
serve_wait_addr() { # log-file -> prints host:port once the server is up
    local log="$1" addr=""
    for _ in $(seq 1 300); do
        addr="$(sed -n 's/^listening on //p' "$log")"
        if [ -n "$addr" ]; then printf '%s' "$addr"; return 0; fi
        sleep 0.1
    done
    echo "serve never reported its address" >&2
    return 1
}
cargo run -q --release -p csched-eval --bin serve -- \
    --addr 127.0.0.1:0 --cache "$SERVE_CACHE" > "$SERVE_DIR/serve1.log" &
SERVE_PID=$!
SERVE_ADDR="$(serve_wait_addr "$SERVE_DIR/serve1.log")"
cargo run -q --release -p csched-eval --bin serve -- \
    --client "$SERVE_ADDR" --malformed > /dev/null
cargo run -q --release -p csched-eval --bin serve -- \
    --client "$SERVE_ADDR" --bench-suite --min-ratio 10
# SIGKILL mid-request: fire a request and kill the server under it; the
# flushed journal must survive (a torn tail is repaired, never corrupt).
cargo run -q --release -p csched-eval --bin serve -- \
    --client "$SERVE_ADDR" --kernel FFT --arch clustered4 > /dev/null 2>&1 &
SERVE_KILL_CLIENT=$!
kill -9 "$SERVE_PID"
wait "$SERVE_KILL_CLIENT" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
cargo run -q --release -p csched-eval --bin serve -- \
    --addr 127.0.0.1:0 --cache "$SERVE_CACHE" > "$SERVE_DIR/serve2.log" &
SERVE_PID=$!
SERVE_ADDR="$(serve_wait_addr "$SERVE_DIR/serve2.log")"
grep -q ', 0 quarantined, 0 corrupt lines,' "$SERVE_DIR/serve2.log"
cargo run -q --release -p csched-eval --bin serve -- \
    --client "$SERVE_ADDR" --kernel Merge --arch distributed \
    | grep -q 'CACHE hit'
# Telemetry smoke: METRICS must lead with the schema-versioned JSON
# line and every exposition line must match the Prometheus text
# grammar; TRACE must stream JSONL that terminates with its summary
# and status lines within the event cap; the dashboard renders a
# frame from the same endpoints.
cargo run -q --release -p csched-eval --bin serve -- \
    --client "$SERVE_ADDR" --metrics > "$SERVE_DIR/metrics.txt"
head -1 "$SERVE_DIR/metrics.txt" | grep -q '^{"schema":1,'
grep -q '^csched_requests_total{outcome="ok"} ' "$SERVE_DIR/metrics.txt"
! tail -n +2 "$SERVE_DIR/metrics.txt" \
    | grep -qvE '^(# (HELP|TYPE) csched_[a-z_]+ .+|csched_[a-z_]+(\{[^}]*\})? [0-9]+|)$'
cargo run -q --release -p csched-eval --bin serve -- \
    --client "$SERVE_ADDR" --kernel Merge --arch distributed \
    --trace --events 64 > "$SERVE_DIR/trace.txt"
[ "$(grep -c '^{"req":' "$SERVE_DIR/trace.txt")" -le 64 ]
grep -q '^TRACE end events=' "$SERVE_DIR/trace.txt"
tail -1 "$SERVE_DIR/trace.txt" | grep -q '^OK ii='
cargo run -q --release -p csched-eval --bin dash -- \
    --addr "$SERVE_ADDR" --once | grep -q '^csched dash'
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
rm -rf "$SERVE_DIR"

# Chaos soak smoke: the soak harness drives seeded mixed good/evil
# clients through the fault-injecting proxy against a live server with
# one mid-run SIGKILL+restart (plus a final verification restart). The
# fixed seed is known to inject at least one disconnect and one
# slowloris in this window (soak exits 1 if a required kind never
# fired). The binary asserts the full invariant set internally:
# retrying clients reach 100% eventual success while the no-retry
# control client fails at least once, attempts <= limit on every
# response, compaction runs (12 keys over the 8-entry cap), and after
# the final SIGKILL+restart the cache reports 0 quarantined / 0 corrupt
# and serves every key byte-identically to the first recorded answer.
step "chaos soak smoke (seeded proxy faults + SIGKILL + compaction)"
SOAK_CACHE="$(mktemp -u)"
cargo run -q --release -p csched-eval --bin soak -- \
    --seed 42 --clients 4 --rounds 2 --fault-permille 250 --kills 1 \
    --compact-entries 8 --require-faults disconnect,slowloris \
    --cache "$SOAK_CACHE" \
    --server-bin target/release/serve
rm -f "$SOAK_CACHE"

step "cargo test --doc --workspace"
cargo test -q --doc --workspace

step "cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

if cargo clippy --version >/dev/null 2>&1; then
    step "cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    step "cargo clippy unavailable; skipping lint gate"
fi

if cargo fmt --version >/dev/null 2>&1; then
    step "cargo fmt --check"
    cargo fmt --check
else
    step "rustfmt unavailable; skipping format check"
fi

step "CI passed"
