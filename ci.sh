#!/usr/bin/env bash
# Local CI gate: build, test, lint, and format-check the whole workspace.
#
# Usage: ./ci.sh
#
# The lint and format steps degrade gracefully when the toolchain lacks
# the `clippy` or `rustfmt` components (e.g. a minimal container); the
# build and test steps are mandatory. `csched-core`, `csched-ir`, and
# `csched-eval` (including the `explore` binary, which carries its own
# crate-level attribute) additionally carry
# `deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)` outside
# test code, so the clippy step doubles as the panic-free gate for the
# scheduling pipeline, the evaluation harness, and the design-space
# search.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release --workspace"
cargo build --release --workspace

step "cargo test -q --workspace"
cargo test -q --workspace

# Seeded multi-fault chaos smoke: a tiny deterministic campaign (a few
# hundred milliseconds on the release build from step 1) that degrades
# the distributed machine by random fault combinations and asserts the
# watchdog contract — valid schedule, typed error, or in-deadline stop;
# never a panic, never a budget overrun. Exit 1 means a violation.
step "chaos smoke campaign (seeded, deterministic)"
cargo run -q --release -p csched-eval --bin chaos -- \
    --seed 3 --runs 6 --max-faults 2 --step-limit 20000 --kernels 2 \
    --arch distributed > /dev/null

# Full-grid explain agreement: every Table 1 kernel × Imagine
# organisation, checked against independent RecMII/ResMII computations.
# Ignored under the debug profile (minutes); seconds on release.
step "explain full-grid agreement (release)"
cargo test -q --release -p csched-eval --test explain_grid -- --include-ignored

# Perf-regression bench smoke: re-measure a small kernel×arch grid and
# diff it against the committed baseline. Deterministic fields (ok, II,
# copies, attempts) must match exactly; wall clock is advisory because
# the baseline was recorded on different hardware.
step "bench smoke vs BENCH_baseline.json"
cargo run -q --release -p csched-eval --bin bench-json -- \
    --label ci --reps 2 --kernels FFT,Merge,DCT --archs central,distributed
cargo run -q --release -p csched-eval --bin bench-json -- \
    --compare BENCH_baseline.json BENCH_ci.json

# Design-space exploration smoke: a small sampled sweep on 2 worker
# threads must print JSON byte-identical to the single-threaded run
# (candidates merge in index order; the report carries no thread count
# or wall clock). The full determinism suite — including the ignored
# 50-candidate acceptance sweep at --jobs 8 — then runs on the release
# profile, where it takes seconds.
step "explore smoke (thread-count invariance)"
cargo run -q --release -p csched-eval --bin explore -- \
    --kernels Merge,Sort --candidates 6 --rounds 0 --step-limit 200000 \
    --jobs 1 --json > EXPLORE_ci_j1.json
cargo run -q --release -p csched-eval --bin explore -- \
    --kernels Merge,Sort --candidates 6 --rounds 0 --step-limit 200000 \
    --jobs 2 --json > EXPLORE_ci_j2.json
diff EXPLORE_ci_j1.json EXPLORE_ci_j2.json

step "explore determinism suite incl. acceptance sweep (release)"
cargo test -q --release -p csched-eval --test explore_determinism -- --include-ignored

# Bottleneck-attribution smoke: the explain binary must name a binding.
step "explain smoke (FFT on distributed)"
cargo run -q --release -p csched-eval --bin explain -- FFT distributed --json \
    | grep -q '"binding"'

step "cargo test --doc --workspace"
cargo test -q --doc --workspace

step "cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

if cargo clippy --version >/dev/null 2>&1; then
    step "cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    step "cargo clippy unavailable; skipping lint gate"
fi

if cargo fmt --version >/dev/null 2>&1; then
    step "cargo fmt --check"
    cargo fmt --check
else
    step "rustfmt unavailable; skipping format check"
fi

step "CI passed"
