//! The textual kernel language: write a kernel as text, parse it, schedule
//! it on two register-file organisations, and print both the IR round-trip
//! and the paper-style schedule grids.
//!
//! ```sh
//! cargo run --release --example kernel_language
//! ```

use csched::core::{schedule_kernel, SchedulerConfig};
use csched::ir::{interp, text, Memory, Word};
use csched::machine::imagine;

const SAXPY: &str = r#"
kernel "saxpy" {
  description "y[i] = a * x[i] + y[i] with a loop-carried checksum"
  region x disjoint
  region y aliasing   ; read and written each iteration
  region out disjoint
  loop body {
    var i   = init 0 update i1
    var sum = init 0 update sum1
    xv   = load x [i + 0]
    yv   = load y [i + 1000]
    ax   = imul xv, 3
    yv1  = iadd ax, yv
    store y [i + 1000], yv1
    sum1 = iadd sum, yv1
    store out [i + 2000], sum1
    i1   = iadd i, 1
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- parse, print back (round-trip) -----------------------------------
    let kernel = text::parse(SAXPY)?;
    println!(
        "parsed `{}`: {} operations",
        kernel.name(),
        kernel.num_ops()
    );
    println!("round-tripped IR:\n{}", text::print(&kernel));

    // --- interpret as the semantic reference ------------------------------
    let trip = 6u64;
    let mut mem = Memory::new();
    mem.write_block(0, (0..trip as i64).map(|v| Word::I(v + 1)));
    mem.write_block(1000, (0..trip as i64).map(|v| Word::I(10 * v)));
    interp::run(&kernel, &mut mem, trip)?;
    println!(
        "reference: y[2] = {}, checksum[5] = {}",
        mem.main[&1002], mem.main[&2005]
    );

    // --- schedule on two organisations ------------------------------------
    for arch in [imagine::central(), imagine::distributed()] {
        let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())?;
        println!(
            "\n=== {} : II = {}, copies = {} ===",
            arch.name(),
            schedule.ii().unwrap(),
            schedule.num_copies()
        );
        println!("{}", schedule.render(&arch, &kernel));

        // Execute the schedule and cross-check against the interpreter.
        let mut sim_mem = Memory::new();
        sim_mem.write_block(0, (0..trip as i64).map(|v| Word::I(v + 1)));
        sim_mem.write_block(1000, (0..trip as i64).map(|v| Word::I(10 * v)));
        csched::sim::execute(&kernel, &schedule, &mut sim_mem, trip)?;
        assert_eq!(sim_mem.main, mem.main, "simulation matches the reference");
        println!("simulation matches the reference output");
    }
    Ok(())
}
