//! Quickstart: build a kernel, schedule it onto the distributed register
//! file machine, inspect the schedule, and run it on the cycle simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use csched::core::{schedule_kernel, validate, SchedulerConfig};
use csched::ir::{interp, KernelBuilder, Memory, Word};
use csched::machine::{imagine, Opcode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Write a kernel: out[i] = (in[i] + 3)^2 ------------------------
    let mut kb = KernelBuilder::new("quickstart");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let x = kb.load(lp, input, i.into(), 0i64.into());
    let x3 = kb.push(lp, Opcode::IAdd, [x.into(), 3i64.into()]);
    let sq = kb.push(lp, Opcode::IMul, [x3.into(), x3.into()]);
    kb.store(lp, output, i.into(), 0i64.into(), sq.into());
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    let kernel = kb.build()?;

    // --- 2. Pick a machine and schedule ----------------------------------
    // The distributed register file architecture: one small register file
    // per functional-unit input, ten shared global buses (paper Fig 27).
    let arch = imagine::distributed();
    println!("machine: {}", arch.summary().lines().next().unwrap());

    let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())?;
    println!(
        "scheduled: II={}, {} copy operations inserted",
        schedule.ii().unwrap(),
        schedule.num_copies()
    );

    // --- 3. Independently validate the schedule --------------------------
    validate::validate(&arch, &kernel, &schedule)
        .map_err(|e| format!("invalid schedule: {e:?}"))?;
    println!("validated: every route, claim and dependence checked");

    // --- 4. Print the Figure 7-style schedule grid -----------------------
    println!("\n{}", schedule.render(&arch, &kernel));

    // --- 5. Execute on the cycle simulator and cross-check ---------------
    let trip = 16u64;
    let mut sim_mem = Memory::new();
    sim_mem.write_block(0, (0..trip as i64).map(Word::I));
    let stats = csched::sim::execute(&kernel, &schedule, &mut sim_mem, trip)?;

    let mut ref_mem = Memory::new();
    ref_mem.write_block(0, (0..trip as i64).map(Word::I));
    interp::run(&kernel, &mut ref_mem, trip)?;

    assert_eq!(sim_mem.main, ref_mem.main, "simulator matches interpreter");
    println!(
        "simulated {} cycles, {} operations; memory matches the reference",
        stats.cycles, stats.ops_executed
    );
    println!("out[5] = {}", sim_mem.main[&5]);
    Ok(())
}
