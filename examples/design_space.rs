//! Architecture design-space exploration — the paper's §8 pitch:
//! "Communication scheduling is not architecture specific. It can be used
//! to explore novel register file architectures without implementing a
//! custom compiler for each architecture."
//!
//! This example defines a family of *hybrid* machines — distributed
//! register files with a varying number of global buses — checks each for
//! copy-connectedness (Appendix A), schedules two kernels on every
//! variant, and reports how performance and estimated area trade off as
//! the shared interconnect shrinks.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use csched::core::{schedule_kernel, SchedulerConfig};
use csched::machine::{cost, default_capability, ArchBuilder, Architecture, FuClass, Opcode};

/// A small distributed machine with a configurable global bus count:
/// 3 ALUs, 1 multiplier, 2 load/store units, one register file per input.
fn hybrid(buses: usize) -> Architecture {
    let mut b = ArchBuilder::new(format!("hybrid-{buses}bus"));
    use Opcode::*;
    let caps = |ops: &[Opcode]| {
        ops.iter()
            .map(|&o| default_capability(o))
            .collect::<Vec<_>>()
    };
    let alu_ops = [
        IAdd, ISub, IMin, IMax, And, Or, Xor, Shl, Sra, ICmpEq, ICmpLt, ICmpLe, Select, Copy,
    ];
    let units: Vec<_> = vec![
        (
            b.functional_unit("ALU0", FuClass::Alu, 3, true, caps(&alu_ops)),
            3usize,
        ),
        (
            b.functional_unit("ALU1", FuClass::Alu, 3, true, caps(&alu_ops)),
            3,
        ),
        (
            b.functional_unit("ALU2", FuClass::Alu, 3, true, caps(&alu_ops)),
            3,
        ),
        (
            b.functional_unit("MUL0", FuClass::Mul, 2, true, caps(&[IMul, Copy])),
            2,
        ),
        (
            b.functional_unit("LS0", FuClass::Ls, 3, true, caps(&[Load, Store])),
            3,
        ),
        (
            b.functional_unit("LS1", FuClass::Ls, 3, true, caps(&[Load, Store])),
            3,
        ),
    ];
    let bus_ids: Vec<_> = (0..buses).map(|i| b.bus(format!("GB{i}"))).collect();
    for &(fu, _) in &units {
        for &bus in &bus_ids {
            b.connect_output(fu, bus);
        }
    }
    for &(fu, inputs) in &units {
        for slot in 0..inputs {
            let rf = b.register_file(format!("RF_{}_{slot}", fu.index()), 16);
            let wp = b.write_port(rf);
            for &bus in &bus_ids {
                b.connect_bus_to_write_port(bus, wp);
            }
            b.dedicated_read(rf, fu, slot);
        }
    }
    b.build().expect("hybrid machines are well-formed")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two kernels with different communication appetites.
    let workloads: Vec<_> = ["Merge", "Sort"]
        .iter()
        .map(|n| csched::kernels::by_name(n).expect("known kernel"))
        .collect();

    println!(
        "{:<14} {:>6} {:>10} {:>12} {:>12} {:>10}",
        "machine", "buses", "connected", "Merge II", "Sort II", "rel.area"
    );
    let params = cost::CostParams::default();
    let base_area = cost::estimate(&hybrid(6), &params).area();
    for buses in [6usize, 4, 3, 2, 1] {
        let arch = hybrid(buses);
        let connected = arch.copy_connectivity().is_copy_connected();
        let mut iis = Vec::new();
        for w in &workloads {
            let ii = if connected {
                schedule_kernel(&arch, &w.kernel, SchedulerConfig::default())
                    .map(|s| s.ii().unwrap_or(0))
                    .map(|v| v.to_string())
                    .unwrap_or_else(|_| "fail".into())
            } else {
                "n/a".into()
            };
            iis.push(ii);
        }
        let area = cost::estimate(&arch, &params).area() / base_area;
        println!(
            "{:<14} {:>6} {:>10} {:>12} {:>12} {:>9.2}x",
            arch.name(),
            buses,
            connected,
            iis[0],
            iis[1],
            area
        );
    }
    println!();
    println!("Fewer buses shrink the interconnect but throttle result bandwidth;");
    println!("communication scheduling keeps every copy-connected point of the");
    println!("space schedulable, so the sweep needs no per-machine compiler work.");
    Ok(())
}
