//! The paper's motivating example (§2) end to end: scheduling the Figure 4
//! code fragment onto the Figure 5 toy machine, showing why a conventional
//! scheduler fails and how communication scheduling composes the route of
//! Figure 13 (write stub → copy on the load/store unit → read stub).
//!
//! ```sh
//! cargo run --release --example motivating_example
//! ```

use csched::core::{schedule_kernel, SOpId, SchedulerConfig};
use csched::ir::KernelBuilder;
use csched::machine::{toy, Opcode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = toy::motivating_example();
    println!("Figure 5 machine:\n{}", arch.summary());

    // Figure 4: 1: a = load ...; 2: b = ...+...; 3: c = ...+...;
    //           4: ... = a + b;  5: ... = a + c
    let mut kb = KernelBuilder::new("figure4");
    let mem = kb.region("mem", true);
    let b = kb.straight_block("fragment");
    let a = kb.load(b, mem, 0i64.into(), 0i64.into());
    let bv = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
    let cv = kb.push(b, Opcode::IAdd, [3i64.into(), 4i64.into()]);
    let s4 = kb.push(b, Opcode::IAdd, [a.into(), bv.into()]);
    let s5 = kb.push(b, Opcode::IAdd, [a.into(), cv.into()]);
    kb.store(b, mem, 10i64.into(), 0i64.into(), s4.into());
    kb.store(b, mem, 11i64.into(), 0i64.into(), s5.into());
    let kernel = kb.build()?;

    let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())?;
    println!("{}", schedule.render(&arch, &kernel));

    // Narrate every communication's route, Figure 10/13-style.
    let u = schedule.universe();
    for comm in u.comm_ids() {
        let c = u.comm(comm);
        let legs = schedule.transport(comm);
        print!(
            "communication {} -> {} (operand {}): ",
            c.producer, c.consumer, c.slot
        );
        if legs.len() == 1 {
            let r = legs[0].1;
            println!(
                "direct route through {} ({} -> {})",
                arch.rf(r.wstub.rf).name(),
                arch.bus(r.wstub.bus).name(),
                arch.fu(r.rstub.fu).name(),
            );
        } else {
            let names: Vec<String> = legs
                .iter()
                .map(|(_, r)| arch.rf(r.wstub.rf).name().to_string())
                .collect();
            println!(
                "{} copies, staged through {}",
                legs.len() - 1,
                names.join(" then ")
            );
        }
    }

    // The paper's headline facts about this example:
    let op3 = schedule.placement(SOpId::from_raw(2));
    println!(
        "\noperation 3 (c = ...+...) was delayed to cycle {} by stub conflicts (Figure 19)",
        op3.cycle
    );
    let copies = schedule.num_copies();
    println!("{copies} copy operation(s) inserted (Figure 13's 'a= copy a')");
    Ok(())
}
