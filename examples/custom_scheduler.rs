//! Embedding communication scheduling in a *different* scheduling
//! algorithm — the paper's §8 claim that it "can be implemented as part of
//! a variety of scheduling algorithms ... simply by allowing communication
//! scheduling to accept or reject each operation placement".
//!
//! This example builds a deliberately naive scheduler directly on
//! [`csched::core::Engine`]: operations in plain program order (no
//! critical-path priority), units tried in index order (no eq 1
//! heuristic), earliest cycle first. Communication scheduling still
//! guarantees a *correct* schedule — every placement it accepts has all
//! its routes — it is just slower than the paper's scheduler, which is the
//! point.
//!
//! ```sh
//! cargo run --release --example custom_scheduler
//! ```

use csched::core::{schedule_kernel, validate, Engine, SOpId, SchedulerConfig};
use csched::ir::{DepGraph, DepKind};
use csched::machine::{default_latency, imagine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Table 1 Sort kernel: 38 compare-exchange min/max operations
    // with dense value reuse on a clustered machine.
    let kernel = csched::kernels::by_name("Sort")
        .expect("known kernel")
        .kernel;

    let arch = imagine::clustered(4);

    // --- the naive scheduler, built directly on the Engine ---------------
    let graph = DepGraph::build(&kernel, default_latency);
    let order_edges: Vec<csched::core::OrderEdge> = graph
        .edges()
        .iter()
        .filter(|e| e.kind == DepKind::Mem)
        .map(|e| csched::core::OrderEdge {
            from: SOpId::from_raw(e.from.index()),
            to: SOpId::from_raw(e.to.index()),
            distance: e.distance,
        })
        .collect();
    let asap = graph.asap(&kernel);

    let mut naive = None;
    'ii: for ii in graph.rec_mii(&kernel).max(1)..96 {
        let mut engine = Engine::new(
            &arch,
            &kernel,
            SchedulerConfig::default(),
            order_edges.clone(),
            asap.clone(),
            ii,
        );
        // Program order, first unit that fits, earliest cycle: Figure 11's
        // outer loop with every clever choice stripped out.
        let mut ok = true;
        'ops: for op in kernel.op_ids() {
            let sop = SOpId::from_raw(op.index());
            for cycle in 0..(4 * ii as i64 + 32) {
                for fu in arch.fus_for(kernel.op(op).opcode()) {
                    if engine.place(sop, fu, cycle, 0) {
                        continue 'ops;
                    }
                }
            }
            ok = false;
            break;
        }
        if ok && engine.all_closed() {
            naive = Some(engine.into_schedule(true)?);
            break 'ii;
        }
    }
    let naive = naive.expect("the naive scheduler eventually finds an II");

    // Communication scheduling kept it correct:
    validate::validate(&arch, &kernel, &naive)
        .map_err(|e| format!("naive schedule invalid: {e:?}"))?;

    // --- compare against the paper's scheduler ---------------------------
    let paper = schedule_kernel(&arch, &kernel, SchedulerConfig::default())?;
    println!(
        "{:<22} II = {:>2}, copies = {}",
        "naive program-order:",
        naive.ii().unwrap(),
        naive.num_copies()
    );
    println!(
        "{:<22} II = {:>2}, copies = {}",
        "paper's scheduler:",
        paper.ii().unwrap(),
        paper.num_copies()
    );
    println!(
        "\nBoth schedules validate: communication scheduling made even the\n\
         naive scheduler *correct* on a shared-interconnect machine. The\n\
         heuristics change schedule quality, not correctness — and on some\n\
         kernels (like this one) a simple order can even get lucky, which\n\
         is exactly why the engine and the driving algorithm are separate\n\
         layers."
    );
    Ok(())
}
