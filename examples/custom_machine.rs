//! Everything from text: define a novel register-file architecture *and* a
//! kernel as plain text, check copy-connectedness, schedule, and simulate.
//!
//! This is the workflow the paper's §8 envisions — exploring register file
//! organisations without writing compiler (or even Rust) code per machine.
//!
//! ```sh
//! cargo run --release --example custom_machine
//! ```

use csched::core::{schedule_kernel, SchedulerConfig};
use csched::ir::{interp, text as kernel_text, Memory, Word};
use csched::machine::text as machine_text;

/// A 2-ALU machine where ALU0's results can reach ALU1 only by staging
/// through a shared middle file `RFM` — a deliberately awkward topology to
/// show communication scheduling coping with it.
const MACHINE: &str = r#"
machine "relay" {
  rf RF0 capacity 16 rports 2 wports 1
  rf RFM capacity 16 rports 1 wports 1
  rf RF1 capacity 16 rports 2 wports 1
  bus B0
  bus B1
  fu ALU0 class alu inputs 2 fanout 1 {
    op iadd latency 1
    op isub latency 1
    op copy latency 1
  }
  fu RELAY class copy inputs 1 fanout 1 {
    op copy latency 1
  }
  fu ALU1 class alu inputs 2 fanout 1 {
    op iadd latency 1
    op imul latency 2
    op copy latency 1
  }
  fu LS class ls inputs 3 fanout 2 {
    op load latency 4
    op store latency 1
  }
  drive ALU0 -> B0
  drive RELAY -> B1
  drive ALU1 -> B1
  drive LS -> B0
  drive LS -> B1
  tap B0 -> RF0[0]
  tap B0 -> RFM[0]
  tap B1 -> RF1[0]
  tap B1 -> RFM[0]
  tap B1 -> RF0[0]   ; the relay's path back into ALU0's file
  feed RF0[0] -> ALU0.0
  feed RF0[1] -> ALU0.1
  feed RFM[0] -> RELAY.0
  feed RF1[0] -> ALU1.0
  feed RF1[1] -> ALU1.1
  rfeed RF0[0] -> B0          ; unused extra path, shows shared read syntax
  feed RF1[0] -> LS.0
  feed RF1[1] -> LS.1
  feed RF0[0] -> LS.2
}
"#;

const KERNEL: &str = r#"
kernel "relay-demo" {
  description "out[i] = (in[i] - 1) * (in[i] + 2): ALU0 and ALU1 must talk"
  region in disjoint
  region out disjoint
  loop body {
    var i = init 0 update i1
    x  = load in [i + 0]
    a  = isub x, 1        ; lands on ALU0 or ALU1
    bb = iadd x, 2
    p  = imul a, bb       ; only ALU1 multiplies
    store out [i + 64], p
    i1 = iadd i, 1
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = machine_text::parse(MACHINE)?;
    println!("parsed machine `{}`:", arch.name());
    print!("{}", arch.summary());

    let conn = arch.copy_connectivity();
    println!("copy-connected: {}", conn.is_copy_connected());
    let rf0 = arch.rf_by_name("RF0").unwrap();
    let rf1 = arch.rf_by_name("RF1").unwrap();
    println!(
        "copies needed RF0 -> RF1: {:?} (staged through RFM by the relay unit)",
        conn.copy_distance(rf0, rf1)
    );

    let kernel = kernel_text::parse(KERNEL)?;
    let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())?;
    println!(
        "\nscheduled: II = {}, copies = {}",
        schedule.ii().unwrap(),
        schedule.num_copies()
    );
    println!("{}", schedule.render(&arch, &kernel));

    let trip = 8u64;
    let mut mem = Memory::new();
    mem.write_block(0, (0..trip as i64).map(|v| Word::I(v + 3)));
    csched::sim::execute(&kernel, &schedule, &mut mem, trip)?;
    let mut reference = Memory::new();
    reference.write_block(0, (0..trip as i64).map(|v| Word::I(v + 3)));
    interp::run(&kernel, &mut reference, trip)?;
    assert_eq!(mem.main, reference.main);
    println!(
        "simulation matches the reference; out[3] = {}",
        mem.main[&67]
    );
    Ok(())
}
