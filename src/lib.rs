//! # csched — communication scheduling for shared-interconnect VLIW machines
//!
//! A from-scratch reproduction of Mattson, Dally, Rixner, Kapasi and Owens,
//! *Communication Scheduling* (ASPLOS 2000): a VLIW scheduler component
//! that makes every producer→consumer communication explicit and composes
//! it from a write stub, zero or more copy operations, and a read stub —
//! enabling scheduling to architectures whose functional units share buses
//! and register-file ports, such as the Imagine stream processor's
//! distributed register files.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`machine`]: architecture descriptions, the four Imagine register-file
//!   organisations, copy-connectivity (Appendix A), and the VLSI cost
//!   model (Figures 25–27);
//! - [`ir`]: the kernel IR, dependence graph, reference interpreter and
//!   loop unroller;
//! - [`core`]: the communication-scheduling engine, list/modulo
//!   schedulers, schedule validator and register-pressure analysis;
//! - [`sim`]: the cycle-level simulator;
//! - [`kernels`]: the ten Table 1 evaluation workloads;
//! - [`eval`]: the harness regenerating every table and figure.
//!
//! ## Quick start
//!
//! ```
//! use csched::core::{schedule_kernel, SchedulerConfig};
//! use csched::ir::KernelBuilder;
//! use csched::machine::{imagine, Opcode};
//!
//! // A kernel: out[i] = in[i] * in[i]
//! let mut kb = KernelBuilder::new("square");
//! let input = kb.region("in", true);
//! let output = kb.region("out", true);
//! let lp = kb.loop_block("body");
//! let i = kb.loop_var(lp, 0i64.into());
//! let x = kb.load(lp, input, i.into(), 0i64.into());
//! let y = kb.push(lp, Opcode::IMul, [x.into(), x.into()]);
//! kb.store(lp, output, i.into(), 0i64.into(), y.into());
//! let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
//! kb.set_update(i, i1.into());
//! let kernel = kb.build()?;
//!
//! // Schedule it onto the distributed register file machine.
//! let arch = imagine::distributed();
//! let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())?;
//! println!("II = {}", schedule.ii().unwrap());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## The kernel text language
//!
//! Kernels can also be written textually ([`ir::text`]): a kernel is a
//! named set of memory regions plus blocks; a `loop` block carries
//! `var` declarations (loop variables with init and update operands);
//! each operation names its opcode and operands; loads and stores
//! address a region as `[index + offset]`. The grammar below is the
//! README's example, parsed and scheduled for real:
//!
//! ```
//! let kernel = csched::ir::text::parse(
//!     r#"
//! kernel "triple" {
//!   region in disjoint
//!   region out disjoint
//!   loop body {
//!     var i = init 0 update i1
//!     x = load in [i + 0]
//!     y = imul x, 3
//!     store out [i + 50], y
//!     i1 = iadd i, 1
//!   }
//! }
//! "#,
//! )?;
//! let arch = csched::machine::imagine::distributed();
//! let config = csched::core::SchedulerConfig::default();
//! let schedule = csched::core::schedule_kernel(&arch, &kernel, config)?;
//! assert!(schedule.ii().unwrap() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Observing a scheduling run
//!
//! The scheduler streams typed events (placement attempts and rejects
//! with reasons, stub allocation and revision, route closing, copy
//! insertion) into any [`core::TraceSink`], and a finished schedule
//! summarises into [`core::ScheduleMetrics`] — achieved II vs its
//! lower bounds, copies per communication, and per-resource occupancy:
//!
//! ```
//! use csched::core::{schedule_kernel_traced, RingBufferSink, ScheduleMetrics};
//! # let kernel = csched::ir::text::parse(r#"
//! # kernel "triple" {
//! #   region in disjoint
//! #   region out disjoint
//! #   loop body {
//! #     var i = init 0 update i1
//! #     x = load in [i + 0]
//! #     y = imul x, 3
//! #     store out [i + 50], y
//! #     i1 = iadd i, 1
//! #   }
//! # }
//! # "#)?;
//! let arch = csched::machine::imagine::distributed();
//! let mut sink = RingBufferSink::new(1024);
//! let schedule = schedule_kernel_traced(&arch, &kernel, Default::default(), &mut sink)?;
//! assert!(sink.total() > 0);
//! let metrics = ScheduleMetrics::compute(&arch, &kernel, &schedule);
//! assert_eq!(metrics.ii, schedule.ii());
//! println!("{}", metrics.render_heatmap());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use csched_core as core;
pub use csched_eval as eval;
pub use csched_ir as ir;
pub use csched_kernels as kernels;
pub use csched_machine as machine;
pub use csched_sim as sim;
